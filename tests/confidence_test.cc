#include "core/confidence.h"

#include <gtest/gtest.h>

#include <map>

#include "core/wsd_algebra.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::S;

/// The probabilistic WSD of Figure 4: C1 = {t0.S, t1.S} with probabilities
/// 0.2/0.4/0.4, names certain, marital-status components 0.7/0.3 and
/// uniform 0.25.
Wsd Figure4() {
  Wsd wsd;
  EXPECT_TRUE(wsd.AddRelation("R", rel::Schema::FromNames({"S", "N", "M"}), 2)
                  .ok());
  {
    Component c({FieldKey("R", 0, "S"), FieldKey("R", 1, "S")});
    c.AddWorld({I(185), I(186)}, 0.2);
    c.AddWorld({I(785), I(185)}, 0.4);
    c.AddWorld({I(785), I(186)}, 0.4);
    EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 0, "N")});
    c.AddWorld({S("Smith")}, 1.0);
    EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 0, "M")});
    c.AddWorld({I(1)}, 0.7);
    c.AddWorld({I(2)}, 0.3);
    EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 1, "N")});
    c.AddWorld({S("Brown")}, 1.0);
    EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 1, "M")});
    for (int i = 1; i <= 4; ++i) c.AddWorld({I(i)}, 0.25);
    EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  return wsd;
}

TEST(ConfidenceTest, Figure4WorldProbability) {
  // Choosing (185,186), Smith, M=2, Brown, M=2 yields probability
  // 0.2·1·0.3·1·0.25 = 0.015 (Section 1).
  Wsd wsd = Figure4();
  auto worlds = wsd.EnumerateWorlds(1000).value();
  bool found = false;
  for (const auto& w : worlds) {
    const rel::Relation* r = w.db.GetRelation("R").value();
    std::vector<rel::Value> t0{I(185), S("Smith"), I(2)};
    std::vector<rel::Value> t1{I(186), S("Brown"), I(2)};
    if (r->NumRows() == 2 && r->ContainsRow(t0) && r->ContainsRow(t1)) {
      EXPECT_NEAR(w.prob, 0.015, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ConfidenceTest, Example11ProjectionConfidences) {
  // Q = π_S(R) on Figure 4: conf(185)=0.6, conf(186)=0.6, conf(785)=0.8.
  Wsd wsd = Figure4();
  ASSERT_TRUE(WsdProject(wsd, "R", "Q", {"S"}).ok());
  auto result = PossibleTuplesWithConfidence(wsd, "Q");
  ASSERT_TRUE(result.ok());
  std::map<int64_t, double> conf;
  for (size_t i = 0; i < result->NumRows(); ++i) {
    conf[result->row(i)[0].AsInt()] = result->row(i)[1].AsDouble();
  }
  ASSERT_EQ(conf.size(), 3u);
  EXPECT_NEAR(conf[185], 0.6, 1e-9);
  EXPECT_NEAR(conf[186], 0.6, 1e-9);
  EXPECT_NEAR(conf[785], 0.8, 1e-9);
}

TEST(ConfidenceTest, CertainTuple) {
  Wsd wsd = Figure4();
  // (Smith) is certain in π_N(R).
  ASSERT_TRUE(WsdProject(wsd, "R", "QN", {"N"}).ok());
  std::vector<rel::Value> smith{S("Smith")};
  EXPECT_TRUE(TupleCertain(wsd, "QN", smith).value());
  std::vector<rel::Value> nope{S("Nobody")};
  EXPECT_NEAR(TupleConfidence(wsd, "QN", nope).value(), 0.0, 1e-12);
}

TEST(ConfidenceTest, PossibleTuplesOnBaseRelation) {
  Wsd wsd = Figure4();
  auto possible = PossibleTuples(wsd, "R");
  ASSERT_TRUE(possible.ok());
  // t0: {185,785} × {Smith} × {1,2} = 4; t1: {186,185} × {Brown} × 4 = 8.
  EXPECT_EQ(possible->NumRows(), 12u);
}

TEST(ConfidenceTest, ArityMismatchFails) {
  Wsd wsd = Figure4();
  std::vector<rel::Value> bad{I(185)};
  EXPECT_FALSE(TupleConfidence(wsd, "R", bad).ok());
}

TEST(ConfidenceTest, CertainTuplesAreTheConsistentAnswers) {
  Wsd wsd = Figure4();
  // In R itself, names are certain per slot but full tuples are not.
  auto certain_r = CertainTuples(wsd, "R").value();
  EXPECT_EQ(certain_r.NumRows(), 0u);
  // π_N(R) = {Smith, Brown} in every world.
  ASSERT_TRUE(WsdProject(wsd, "R", "QN", {"N"}).ok());
  auto certain = CertainTuples(wsd, "QN").value();
  EXPECT_EQ(certain.NumRows(), 2u);
}

/// Brute-force confidence: sum of probabilities of enumerated worlds
/// containing the tuple.
double BruteForceConf(const Wsd& wsd, const std::string& rel,
                      std::span<const rel::Value> tuple) {
  auto worlds = wsd.EnumerateWorlds(1000000).value();
  double conf = 0;
  for (const auto& w : worlds) {
    const rel::Relation* r = w.db.GetRelation(rel).value();
    if (r->ContainsRow(tuple)) conf += w.prob;
  }
  return conf;
}

class ConfidenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConfidenceProperty, MatchesBruteForceOnRandomWsds) {
  Rng rng(GetParam());
  Wsd wsd = testutil::RandomWsd(
      rng, {{"R", {"A", "B"}, 3, 2}}, 4, /*decompose=*/true);
  // Probe every possible tuple plus one absent tuple.
  auto possible = PossibleTuples(wsd, "R").value();
  for (size_t i = 0; i < possible.NumRows(); ++i) {
    auto conf = TupleConfidence(wsd, "R", possible.row(i).span());
    ASSERT_TRUE(conf.ok());
    EXPECT_NEAR(*conf, BruteForceConf(wsd, "R", possible.row(i).span()),
                1e-9)
        << "tuple " << possible.row(i).ToString();
    EXPECT_GT(*conf, 0.0);
  }
  std::vector<rel::Value> absent{I(99), I(99)};
  EXPECT_NEAR(TupleConfidence(wsd, "R", absent).value(), 0.0, 1e-12);
}

TEST_P(ConfidenceProperty, PossibleMatchesEnumeration) {
  Rng rng(GetParam() + 500);
  Wsd wsd = testutil::RandomWsd(
      rng, {{"R", {"A", "B"}, 3, 2}}, 4, /*decompose=*/true);
  auto possible = PossibleTuples(wsd, "R").value();
  // Union of tuples across enumerated worlds.
  rel::Relation expected(possible.schema(), "expected");
  auto worlds = wsd.EnumerateWorlds(1000000).value();
  for (const auto& w : worlds) {
    const rel::Relation* r = w.db.GetRelation("R").value();
    for (size_t i = 0; i < r->NumRows(); ++i) {
      expected.AppendRow(r->row(i).span());
    }
  }
  expected.SortDedup();
  EXPECT_TRUE(possible.EqualsAsSet(expected));
}

TEST_P(ConfidenceProperty, ConfidenceAfterQueryMatchesOracle) {
  Rng rng(GetParam() + 900);
  Wsd wsd = testutil::RandomWsd(
      rng, {{"R", {"A", "B"}, 2, 2}}, 3, /*decompose=*/true);
  rel::Plan q = rel::Plan::Project(
      {"A"}, rel::Plan::Select(
                 rel::Predicate::Cmp("B", rel::CmpOp::kEq, I(1)),
                 rel::Plan::Scan("R")));
  ASSERT_TRUE(WsdEvaluate(wsd, q, "OUT").ok());
  auto result = PossibleTuplesWithConfidence(wsd, "OUT").value();
  for (size_t i = 0; i < result.NumRows(); ++i) {
    std::vector<rel::Value> tuple{result.row(i)[0]};
    EXPECT_NEAR(result.row(i)[1].AsDouble(),
                BruteForceConf(wsd, "OUT", tuple), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfidenceProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace maywsd::core
