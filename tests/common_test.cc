// Unit tests for the common substrate: Status/Result, the string
// interner, the deterministic RNG and hash helpers.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/interner.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace maywsd {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("relation R");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "relation R");
  EXPECT_EQ(s.ToString(), "NotFound: relation R");
}

TEST(StatusTest, EqualityAndStreaming) {
  EXPECT_EQ(Status::Inconsistent("x"), Status::Inconsistent("x"));
  EXPECT_FALSE(Status::Inconsistent("x") == Status::Inconsistent("y"));
  std::ostringstream os;
  os << Status::Internal("bug");
  EXPECT_EQ(os.str(), "Internal: bug");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UsesReturnIfError(int v, int* out) {
  MAYWSD_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  MAYWSD_RETURN_IF_ERROR(Status::Ok());
  *out = parsed;
  return Status::Ok();
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 3);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UsesReturnIfError(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UsesReturnIfError(-7, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(InternerTest, IdempotentAndStable) {
  Symbol a = InternString("maywsd-test-alpha");
  Symbol b = InternString("maywsd-test-alpha");
  Symbol c = InternString("maywsd-test-beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(SymbolName(a), "maywsd-test-alpha");
  EXPECT_EQ(SymbolName(c), "maywsd-test-beta");
}

TEST(InternerTest, EmptyStringIsSymbolZero) {
  EXPECT_EQ(InternString(""), 0u);
  EXPECT_EQ(SymbolName(0), "");
}

TEST(InternerTest, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 8;
  constexpr int kStrings = 200;
  std::vector<std::vector<Symbol>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &results] {
      for (int i = 0; i < kStrings; ++i) {
        results[t].push_back(
            InternString("concurrent-" + std::to_string(i)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.2);
  EXPECT_NEAR(hits / 10000.0, 0.2, 0.02);
}

TEST(HashTest, CombineOrderSensitive) {
  size_t a = 0, b = 0;
  HashCombine(a, 1);
  HashCombine(a, 2);
  HashCombine(b, 2);
  HashCombine(b, 1);
  EXPECT_NE(a, b);
}

TEST(HashTest, HashRangeMatchesContent) {
  std::vector<int> v1{1, 2, 3};
  std::vector<int> v2{1, 2, 3};
  std::vector<int> v3{1, 2, 4};
  EXPECT_EQ(HashRange(v1.begin(), v1.end()), HashRange(v2.begin(), v2.end()));
  EXPECT_NE(HashRange(v1.begin(), v1.end()), HashRange(v3.begin(), v3.end()));
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  double first = t.Seconds();
  EXPECT_GE(first, 0.0);
  t.Reset();
  EXPECT_GE(t.Millis(), 0.0);
}

}  // namespace
}  // namespace maywsd
