#include "rel/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace maywsd::rel {
namespace {

TEST(ValueTest, DefaultIsBottom) {
  Value v;
  EXPECT_TRUE(v.is_bottom());
  EXPECT_EQ(v, Value::Bottom());
}

TEST(ValueTest, IntEquality) {
  EXPECT_EQ(Value::Int(42), Value::Int(42));
  EXPECT_NE(Value::Int(42), Value::Int(43));
}

TEST(ValueTest, IntDoubleCrossEquality) {
  EXPECT_EQ(Value::Int(1), Value::Double(1.0));
  EXPECT_EQ(Value::Double(2.0), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Double(1.5));
}

TEST(ValueTest, CrossEqualityHashConsistency) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
}

TEST(ValueTest, StringInterningEquality) {
  EXPECT_EQ(Value::String("abc"), Value::String("abc"));
  EXPECT_NE(Value::String("abc"), Value::String("abd"));
  EXPECT_EQ(Value::String("abc").AsStringView(), "abc");
}

TEST(ValueTest, BottomOnlyEqualsBottom) {
  EXPECT_EQ(Value::Bottom(), Value::Bottom());
  EXPECT_NE(Value::Bottom(), Value::Int(0));
  EXPECT_NE(Value::Bottom(), Value::Question());
  EXPECT_NE(Value::Bottom(), Value::String(""));
}

TEST(ValueTest, QuestionOnlyEqualsQuestion) {
  EXPECT_EQ(Value::Question(), Value::Question());
  EXPECT_NE(Value::Question(), Value::Int(0));
}

TEST(ValueTest, TotalOrderRanks) {
  // ⊥ < numerics < strings < ?.
  EXPECT_LT(Value::Bottom(), Value::Int(-100));
  EXPECT_LT(Value::Int(5), Value::String("a"));
  EXPECT_LT(Value::String("zzz"), Value::Question());
}

TEST(ValueTest, NumericOrderMixesIntsAndDoubles) {
  EXPECT_LT(Value::Int(1), Value::Double(1.5));
  EXPECT_LT(Value::Double(1.5), Value::Int(2));
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
}

TEST(ValueTest, StringOrderIsLexicographic) {
  EXPECT_LT(Value::String("abc"), Value::String("abd"));
  EXPECT_LT(Value::String("ab"), Value::String("abc"));
}

TEST(ValueTest, SatisfiesComparisons) {
  Value a = Value::Int(3);
  Value b = Value::Int(5);
  EXPECT_TRUE(a.Satisfies(CmpOp::kLt, b));
  EXPECT_TRUE(a.Satisfies(CmpOp::kLe, b));
  EXPECT_TRUE(a.Satisfies(CmpOp::kNe, b));
  EXPECT_FALSE(a.Satisfies(CmpOp::kEq, b));
  EXPECT_FALSE(a.Satisfies(CmpOp::kGt, b));
  EXPECT_TRUE(b.Satisfies(CmpOp::kGe, b));
}

TEST(ValueTest, BottomSatisfiesOnlyIdentityEquality) {
  Value bot = Value::Bottom();
  EXPECT_TRUE(bot.Satisfies(CmpOp::kEq, Value::Bottom()));
  EXPECT_FALSE(bot.Satisfies(CmpOp::kEq, Value::Int(0)));
  EXPECT_TRUE(bot.Satisfies(CmpOp::kNe, Value::Int(0)));
  // Ordering against ⊥ is always false.
  EXPECT_FALSE(bot.Satisfies(CmpOp::kLt, Value::Int(10)));
  EXPECT_FALSE(Value::Int(10).Satisfies(CmpOp::kGt, bot));
}

TEST(ValueTest, MixedStringNumberComparisons) {
  EXPECT_FALSE(Value::String("1").Satisfies(CmpOp::kEq, Value::Int(1)));
  EXPECT_TRUE(Value::String("1").Satisfies(CmpOp::kNe, Value::Int(1)));
  EXPECT_FALSE(Value::String("1").Satisfies(CmpOp::kLt, Value::Int(2)));
}

TEST(ValueTest, HashDistinguishesKinds) {
  std::unordered_set<Value> set;
  set.insert(Value::Bottom());
  set.insert(Value::Question());
  set.insert(Value::Int(0));
  set.insert(Value::String("0"));
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.count(Value::Bottom()));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::Question().ToString(), "?");
  EXPECT_EQ(Value::Bottom().ToString(), "\xe2\x8a\xa5");
}

TEST(ValueTest, ValueIs16Bytes) {
  EXPECT_LE(sizeof(Value), 16u);
}

}  // namespace
}  // namespace maywsd::rel
