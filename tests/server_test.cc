// The serving subsystem: WorldServer request dispatch, the serve_worlds
// line protocol, and the MVCC snapshot-isolation oracle.
//
// The oracle is the load-bearing test (and the one the TSan CI job runs):
// reader threads take Session::Snapshot()s while a writer thread applies
// a known update sequence. Every snapshot records its pinned version of
// the target relation plus the answer it saw; afterwards the same update
// sequence replays serially on a fresh session, building the
// version → relation truth table. Snapshot isolation holds iff every
// concurrent observation equals the serial state at its pinned version —
// no torn reads, no observations of a version that never existed.

#include "server/world_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "tests/test_util.h"

namespace maywsd::server {
namespace {

using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::Value;
using testutil::I;

rel::Relation BaseRelation() {
  rel::Relation r(rel::Schema::FromNames({"A"}), "R");
  r.AppendRow({I(1)});
  r.AppendRow({I(2)});
  r.AppendRow({I(3)});
  return r;
}

/// The writer's script: an alternating insert/delete sequence whose every
/// step changes possible(R), so distinct versions have distinct answers.
std::vector<rel::UpdateOp> WriterScript(int steps) {
  std::vector<rel::UpdateOp> ops;
  for (int k = 0; k < steps; ++k) {
    if (k % 2 == 0) {
      rel::Relation rows(rel::Schema::FromNames({"A"}), "R");
      rows.AppendRow({I(100 + k)});
      ops.push_back(rel::UpdateOp::InsertTuples("R", std::move(rows)));
    } else {
      ops.push_back(rel::UpdateOp::DeleteWhere(
          "R", Predicate::Cmp("A", CmpOp::kEq, I(100 + k - 1))));
    }
  }
  return ops;
}

TEST(SnapshotIsolationOracle, ConcurrentSnapshotsEqualSerialReplay) {
  constexpr int kWriterSteps = 24;
  constexpr int kReaders = 4;
  const std::vector<rel::UpdateOp> script = WriterScript(kWriterSteps);

  for (api::BackendKind kind : testutil::AllBackendKinds()) {
    api::Session session = api::Session::Open(kind);
    ASSERT_TRUE(session.Register(BaseRelation()).ok());

    struct Observation {
      uint64_t version;
      rel::Relation rows;
    };
    std::vector<std::vector<Observation>> observed(kReaders);
    std::atomic<bool> writer_done{false};

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&session, &observed, &writer_done, r] {
        do {
          api::Snapshot snapshot = session.Snapshot();
          uint64_t version = snapshot.RelationVersion("R");
          auto rows = snapshot.PossibleTuples("R");
          ASSERT_TRUE(rows.ok());
          // A snapshot's own reads never wait behind the writer.
          EXPECT_EQ(snapshot.Stats().reader_blocked_waits, 0u);
          observed[r].push_back({version, std::move(rows.value())});
        } while (!writer_done.load(std::memory_order_acquire));
      });
    }
    std::thread writer([&session, &script, &writer_done] {
      for (const rel::UpdateOp& op : script) {
        ASSERT_TRUE(session.Apply(op).ok());
      }
      writer_done.store(true, std::memory_order_release);
    });
    writer.join();
    for (std::thread& t : readers) t.join();

    // Serial replay: the truth table version → possible(R).
    api::Session replay = api::Session::Open(kind);
    ASSERT_TRUE(replay.Register(BaseRelation()).ok());
    std::unordered_map<uint64_t, rel::Relation> truth;
    auto record = [&truth, &replay] {
      auto rows = replay.PossibleTuples("R");
      ASSERT_TRUE(rows.ok());
      truth.emplace(replay.RelationVersion("R"), std::move(rows.value()));
    };
    record();
    for (const rel::UpdateOp& op : script) {
      ASSERT_TRUE(replay.Apply(op).ok());
      record();
    }

    size_t total = 0;
    for (int r = 0; r < kReaders; ++r) {
      total += observed[r].size();
      for (const Observation& obs : observed[r]) {
        auto it = truth.find(obs.version);
        ASSERT_NE(it, truth.end())
            << api::BackendKindName(kind) << ": snapshot pinned version "
            << obs.version << ", which no serial state ever had";
        EXPECT_TRUE(obs.rows.EqualsAsSet(it->second))
            << api::BackendKindName(kind) << " at version " << obs.version;
      }
    }
    EXPECT_GT(total, 0u);
    EXPECT_GE(session.Stats().snapshots, total);
  }
}

TEST(WorldServerTest, SessionLifecycleAndErrors) {
  WorldServer server;

  Request open;
  open.kind = Request::Kind::kOpenSession;
  open.session = "s1";
  open.backend = api::BackendKind::kWsdt;
  EXPECT_TRUE(server.Execute(open).status.ok());
  EXPECT_EQ(server.Execute(open).status.code(), StatusCode::kAlreadyExists);

  Request missing;
  missing.kind = Request::Kind::kPossible;
  missing.session = "nope";
  missing.target = "R";
  EXPECT_EQ(server.Execute(missing).status.code(), StatusCode::kNotFound);

  EXPECT_EQ(server.SessionIds(), std::vector<std::string>{"s1"});

  Request close;
  close.kind = Request::Kind::kCloseSession;
  close.session = "s1";
  EXPECT_TRUE(server.Execute(close).status.ok());
  EXPECT_EQ(server.Execute(close).status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(server.SessionIds().empty());

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.errors, 3u);
  EXPECT_EQ(stats.sessions_opened, 1u);
}

TEST(WorldServerTest, RegisterRunAnswerRoundTrip) {
  WorldServer server;
  Request open;
  open.kind = Request::Kind::kOpenSession;
  open.session = "s";
  open.backend = api::BackendKind::kUrel;
  ASSERT_TRUE(server.Execute(open).status.ok());

  Request reg;
  reg.kind = Request::Kind::kRegister;
  reg.session = "s";
  reg.relation = BaseRelation();
  ASSERT_TRUE(server.Execute(reg).status.ok());

  Request run;
  run.kind = Request::Kind::kRun;
  run.session = "s";
  run.target = "Q";
  run.plan = Plan::Select(Predicate::Cmp("A", CmpOp::kGe, I(2)),
                          Plan::Scan("R"));
  ASSERT_TRUE(server.Execute(run).status.ok());

  Request possible;
  possible.kind = Request::Kind::kPossible;
  possible.session = "s";
  possible.target = "Q";
  Response got = server.Execute(possible);
  ASSERT_TRUE(got.status.ok());
  ASSERT_TRUE(got.relation.has_value());
  EXPECT_EQ(got.relation->NumRows(), 2u);

  Request snap_read = possible;
  snap_read.kind = Request::Kind::kSnapshotRead;
  Response via_snapshot = server.Execute(snap_read);
  ASSERT_TRUE(via_snapshot.status.ok());
  EXPECT_TRUE(via_snapshot.relation->EqualsAsSet(*got.relation));
  EXPECT_EQ(server.Stats().snapshot_reads, 1u);
}

TEST(WorldServerTest, ExecuteAllServesMixedTrafficConcurrently) {
  // Many sessions, mixed reads/updates in one batch over the shared pool:
  // responses land in request order, every request against an open
  // session succeeds.
  WorldServer server;
  constexpr int kSessions = 6;
  for (int s = 0; s < kSessions; ++s) {
    Request open;
    open.kind = Request::Kind::kOpenSession;
    open.session = "s" + std::to_string(s);
    open.backend =
        testutil::AllBackendKinds()[s % testutil::AllBackendKinds().size()];
    ASSERT_TRUE(server.Execute(open).status.ok());
    Request reg;
    reg.kind = Request::Kind::kRegister;
    reg.session = open.session;
    reg.relation = BaseRelation();
    ASSERT_TRUE(server.Execute(reg).status.ok());
  }

  std::vector<Request> batch;
  for (int i = 0; i < 48; ++i) {
    Request req;
    req.session = "s" + std::to_string(i % kSessions);
    req.target = "R";
    switch (i % 3) {
      case 0:
        req.kind = Request::Kind::kSnapshotRead;
        break;
      case 1:
        req.kind = Request::Kind::kApply;
        req.update = rel::UpdateOp::DeleteWhere(
            "R", Predicate::Cmp("A", CmpOp::kLt, I(0)));  // no-op delete
        break;
      default:
        req.kind = Request::Kind::kPossible;
        break;
    }
    batch.push_back(std::move(req));
  }
  std::vector<Response> responses = server.ExecuteAll(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].status.ok()) << "request " << i;
    if (batch[i].kind != Request::Kind::kApply) {
      ASSERT_TRUE(responses[i].relation.has_value()) << "request " << i;
      EXPECT_EQ(responses[i].relation->NumRows(), 3u) << "request " << i;
    }
  }
  EXPECT_EQ(server.Stats().errors, 0u);
}

TEST(ProtocolTest, ParsesEveryVerb) {
  auto open = ParseRequest("open s wsd");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->kind, Request::Kind::kOpenSession);
  EXPECT_EQ(open->session, "s");
  EXPECT_EQ(open->backend, api::BackendKind::kWsd);

  auto reg = ParseRequest("register s R a,b 1,2 3,x");
  ASSERT_TRUE(reg.ok());
  EXPECT_EQ(reg->kind, Request::Kind::kRegister);
  ASSERT_TRUE(reg->relation.has_value());
  EXPECT_EQ(reg->relation->name(), "R");
  EXPECT_EQ(reg->relation->NumRows(), 2u);
  EXPECT_TRUE(reg->relation->row(1).span()[1].is_string());

  auto run = ParseRequest("run s Q select R a >= 2");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->kind, Request::Kind::kRun);
  EXPECT_EQ(run->target, "Q");
  ASSERT_TRUE(run->plan.has_value());
  EXPECT_EQ(run->plan->kind(), Plan::Kind::kSelect);

  auto insert = ParseRequest("apply s insert R a,b 7,8");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert->update->kind(), rel::UpdateOp::Kind::kInsert);

  auto del = ParseRequest("apply s delete R a = 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->update->kind(), rel::UpdateOp::Kind::kDelete);

  auto modify = ParseRequest("apply s modify R a = 1 set b=9,a=0");
  ASSERT_TRUE(modify.ok());
  EXPECT_EQ(modify->update->kind(), rel::UpdateOp::Kind::kModify);
  EXPECT_EQ(modify->update->assignments().size(), 2u);

  EXPECT_EQ(ParseRequest("possible s R")->kind, Request::Kind::kPossible);
  EXPECT_EQ(ParseRequest("certain s R")->kind, Request::Kind::kCertain);
  EXPECT_EQ(ParseRequest("read s R")->kind, Request::Kind::kSnapshotRead);
  EXPECT_EQ(ParseRequest("stats s")->kind, Request::Kind::kStats);
  EXPECT_EQ(ParseRequest("sessions")->kind, Request::Kind::kListSessions);

  auto conf = ParseRequest("conf s R 1,2");
  ASSERT_TRUE(conf.ok());
  EXPECT_EQ(conf->kind, Request::Kind::kConfidence);
  ASSERT_EQ(conf->tuple.size(), 2u);
  EXPECT_EQ(conf->tuple[0], I(1));
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  for (const char* bad :
       {"", "frobnicate s", "open s cassandra", "open s", "run s Q",
        "run s Q select R a ~ 2", "apply s insert R", "apply s modify R a = 1",
        "register s R", "conf s R",
        // Truncated/doubled commas: the grammar cannot spell an empty
        // value or attribute, so these are rejected, not parsed as "".
        "register s R a,b 1,", "register s R a, 1,2", "conf s R 1,",
        "conf s R ,1", "run s Q project R a,",
        "apply s modify R a = 1 set b=", "apply s insert R a,b 1,,2"}) {
    auto req = ParseRequest(bad);
    EXPECT_FALSE(req.ok()) << "\"" << bad << "\" parsed";
  }
}

// FormatRequest is the canonical inverse of ParseRequest:
// Format(Parse(line)) == line for every canonical line, and
// Parse(Format(request)) reproduces the request. The corpus spans every
// verb and every expressible plan/update shape.
TEST(ProtocolTest, FormatParseRoundTripIsIdentityOnCanonicalLines) {
  const char* canonical[] = {
      "open s wsd",
      "open s2 urel",
      "close s",
      "sessions",
      "register s R a,b 1,2 3,x",
      "register s Empty a,b",
      "run s Q scan R",
      "run s Q select R a >= 2",
      "run s Q select R name != bob",
      "run s Q project R b,a",
      "apply s insert R a,b 7,8 9,zed",
      "apply s delete R a = 1",
      "apply s modify R a <= 1 set b=9,a=0",
      "possible s R",
      "certain s Q",
      "conf s R 1,2",
      "read s R",
      "stats s",
  };
  for (const char* line : canonical) {
    SCOPED_TRACE(line);
    auto request = ParseRequest(line);
    ASSERT_TRUE(request.ok()) << request.status().message();
    auto formatted = FormatRequest(*request);
    ASSERT_TRUE(formatted.ok()) << formatted.status().message();
    EXPECT_EQ(*formatted, line);
    // And a second trip through the parser lands on the same text.
    auto reparsed = ParseRequest(*formatted);
    ASSERT_TRUE(reparsed.ok());
    auto reformatted = FormatRequest(*reparsed);
    ASSERT_TRUE(reformatted.ok());
    EXPECT_EQ(*reformatted, *formatted);
  }
}

// Generated property sweep: random (but canonical) requests survive
// Format → Parse → Format untouched, across every verb, operator and
// value shape the grammar can express.
TEST(ProtocolTest, GeneratedRequestsRoundTrip) {
  testutil::SeededRng rng(424242);
  MAYWSD_SEED_TRACE(rng);
  const char* ops[] = {"=", "!=", "<>", "<", "<=", ">", ">="};
  const char* names[] = {"R", "S", "T2", "rel_x"};
  auto value = [&]() -> std::string {
    if (rng.Bernoulli(0.5)) {
      return std::to_string(static_cast<int64_t>(rng.Uniform(200)) - 100);
    }
    const char* words[] = {"alice", "bob", "x", "zed-9"};
    return words[rng.Uniform(4)];
  };
  for (int i = 0; i < 200; ++i) {
    std::string line;
    const char* rel = names[rng.Uniform(4)];
    switch (rng.Uniform(6)) {
      case 0:
        line = std::string("run s Q select ") + rel + " a " +
               ops[rng.Uniform(7)] + " " + value();
        break;
      case 1:
        line = std::string("run s Q scan ") + rel;
        break;
      case 2:
        line = std::string("apply s delete ") + rel + " b " +
               ops[rng.Uniform(7)] + " " + value();
        break;
      case 3:
        line = std::string("apply s insert ") + rel + " a,b " + value() +
               "," + value();
        break;
      case 4:
        line = std::string("apply s modify ") + rel + " a " +
               ops[rng.Uniform(7)] + " " + value() + " set b=" + value();
        break;
      default:
        line = std::string("conf s ") + rel + " " + value() + "," + value();
        break;
    }
    // "<>" parses but canonicalizes to "!=": normalize the expectation.
    std::string expected = line;
    if (size_t pos = expected.find("<>"); pos != std::string::npos) {
      expected.replace(pos, 2, "!=");
    }
    SCOPED_TRACE(line);
    auto request = ParseRequest(line);
    ASSERT_TRUE(request.ok()) << request.status().message();
    auto formatted = FormatRequest(*request);
    ASSERT_TRUE(formatted.ok()) << formatted.status().message();
    EXPECT_EQ(*formatted, expected);
  }
}

// Truncations of valid lines and malformed mutants must be rejected with
// an error status — never a crash, never a silent partial parse of a
// *shorter-arity* verb... unless the truncation happens to be a complete
// valid request itself (e.g. "conf s R 1,2" → "conf s R" is invalid, but
// "apply s insert R a,b 7,8 9,9" → "... 7,8" is valid). Accepting those
// is correct; everything else must fail.
TEST(ProtocolTest, TruncatedLinesRejectOrStayValid) {
  const char* lines[] = {
      "open s wsd",
      "register s R a,b 1,2",
      "run s Q select R a >= 2",
      "apply s modify R a = 1 set b=9",
      "conf s R 1,2",
  };
  for (const char* line : lines) {
    std::string full(line);
    for (size_t cut = 0; cut < full.size(); ++cut) {
      std::string prefix = full.substr(0, cut);
      auto request = ParseRequest(prefix);
      if (!request.ok()) continue;  // rejected: fine
      // Anything accepted must round-trip as a genuinely valid request.
      auto formatted = FormatRequest(*request);
      ASSERT_TRUE(formatted.ok()) << "\"" << prefix << "\"";
      auto reparsed = ParseRequest(*formatted);
      ASSERT_TRUE(reparsed.ok()) << "\"" << prefix << "\"";
      EXPECT_EQ(reparsed->kind, request->kind) << "\"" << prefix << "\"";
    }
  }
}

TEST(ProtocolTest, FormatsResponses) {
  Response err;
  err.status = Status::NotFound("session x");
  EXPECT_EQ(FormatResponse(err).rfind("ERR ", 0), 0u);

  Response rows;
  rows.relation = BaseRelation();
  EXPECT_EQ(FormatResponse(rows), "OK 3 rows\n1\n2\n3");

  Response number;
  number.number = 0.5;
  EXPECT_EQ(FormatResponse(number), "OK 0.5");

  Response ack;
  ack.text = "opened s";
  EXPECT_EQ(FormatResponse(ack), "OK opened s");

  EXPECT_EQ(FormatResponse(Response{}), "OK");
}

}  // namespace
}  // namespace maywsd::server
