#include "core/wsd_algebra.h"

#include <gtest/gtest.h>

#include <set>

#include "core/engine/plan_driver.h"
#include "core/normalize.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using testutil::I;
using testutil::RandomWorlds;
using testutil::RelSpec;

/// The 7-WSD of Figure 10 over R[A,B,C] with three tuples; represents the
/// eight worlds of Figure 10(a).
Wsd Figure10() {
  Wsd wsd;
  EXPECT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A", "B", "C"}), 3).ok());
  {
    Component c({FieldKey("R", 0, "A")});
    c.AddWorld({I(1)}, 0.5);
    c.AddWorld({I(2)}, 0.5);
    EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 0, "B"), FieldKey("R", 0, "C"),
                 FieldKey("R", 1, "B")});
    c.AddWorld({I(1), I(0), I(3)}, 0.5);
    c.AddWorld({I(2), I(7), I(4)}, 0.5);
    EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 1, "A")});
    c.AddWorld({I(4)}, 0.5);
    c.AddWorld({I(5)}, 0.5);
    EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  auto add_const = [&](TupleId t, const char* attr, int64_t v) {
    Component c({FieldKey("R", t, attr)});
    c.AddWorld({I(v)}, 1.0);
    EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
  };
  add_const(1, "C", 0);
  add_const(2, "A", 6);
  add_const(2, "B", 6);
  add_const(2, "C", 7);
  return wsd;
}

/// Runs plan through both the per-world oracle and the WSD operators and
/// checks Theorem 1: rep(Q̂(W))|result = {Q(A) | A ∈ rep(W)}.
void ExpectOracleEquivalent(Wsd wsd, const Plan& plan,
                            const char* label = "") {
  auto worlds = wsd.EnumerateWorlds(100000);
  ASSERT_TRUE(worlds.ok()) << label;
  auto expected = EvaluatePerWorld(*worlds, plan, "OUT");
  ASSERT_TRUE(expected.ok()) << label;
  Status st = WsdEvaluate(wsd, plan, "OUT");
  ASSERT_TRUE(st.ok()) << label << ": " << st;
  ASSERT_TRUE(wsd.Validate().ok()) << label;
  auto actual = wsd.EnumerateWorlds(1000000, {"OUT"});
  ASSERT_TRUE(actual.ok()) << label;
  EXPECT_TRUE(WorldSetsEquivalent(*expected, *actual)) << label;
}

TEST(WsdAlgebraGolden, Figure10Has8Worlds) {
  Wsd wsd = Figure10();
  ASSERT_TRUE(wsd.Validate().ok());
  EXPECT_EQ(wsd.NumLiveComponents(), 7u);
  EXPECT_EQ(CollapseWorlds(wsd.EnumerateWorlds(100).value()).size(), 8u);
}

TEST(WsdAlgebraGolden, Figure11aSelectCEq7) {
  // P := σ_{C=7}(R): worlds of different sizes (t1 deleted where C=0).
  Wsd wsd = Figure10();
  ASSERT_TRUE(WsdSelectConst(wsd, "R", "P", "C", CmpOp::kEq, I(7)).ok());
  ASSERT_TRUE(wsd.Validate().ok());
  auto worlds = CollapseWorlds(wsd.EnumerateWorlds(1000, {"P"}).value());
  // P is {(6,6,7)} in half the worlds and {(A,2,7),(6,6,7)} with A ∈ {1,2}
  // in the others: three distinct results.
  ASSERT_EQ(worlds.size(), 3u);
  for (const auto& w : worlds) {
    const rel::Relation* p = w.db.GetRelation("P").value();
    std::vector<rel::Value> anchor{I(6), I(6), I(7)};
    EXPECT_TRUE(p->ContainsRow(anchor));
  }
  ExpectOracleEquivalent(
      Figure10(),
      Plan::Select(Predicate::Cmp("C", CmpOp::kEq, I(7)), Plan::Scan("R")),
      "Fig11a");
}

TEST(WsdAlgebraGolden, Figure11bSelectBEq1) {
  ExpectOracleEquivalent(
      Figure10(),
      Plan::Select(Predicate::Cmp("B", CmpOp::kEq, I(1)), Plan::Scan("R")),
      "Fig11b");
}

TEST(WsdAlgebraGolden, Figure13SelectAEqB) {
  // σ_{A=B}(R) represents five worlds: one with three tuples, three with
  // two, one with one (Example 8).
  Wsd wsd = Figure10();
  ASSERT_TRUE(WsdSelectAttrAttr(wsd, "R", "P", "A", CmpOp::kEq, "B").ok());
  ASSERT_TRUE(wsd.Validate().ok());
  auto worlds = CollapseWorlds(wsd.EnumerateWorlds(1000, {"P"}).value());
  ASSERT_EQ(worlds.size(), 5u);
  std::multiset<size_t> sizes;
  for (const auto& w : worlds) {
    sizes.insert(w.db.GetRelation("P").value()->NumRows());
  }
  EXPECT_EQ(sizes.count(3), 1u);
  EXPECT_EQ(sizes.count(2), 3u);
  EXPECT_EQ(sizes.count(1), 1u);
  ExpectOracleEquivalent(
      Figure10(),
      Plan::Select(Predicate::CmpAttr("A", CmpOp::kEq, "B"), Plan::Scan("R")),
      "Fig13");
}

TEST(WsdAlgebraGolden, Figure14Product) {
  // Figure 14: R[A,B] two tuples × S[C,D] two tuples.
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A", "B"}), 2).ok());
  ASSERT_TRUE(
      wsd.AddRelation("S", rel::Schema::FromNames({"C", "D"}), 2).ok());
  {
    Component c({FieldKey("R", 0, "A")});
    c.AddWorld({I(1)}, 0.5);
    c.AddWorld({I(2)}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 0, "B"), FieldKey("R", 1, "A")});
    c.AddWorld({I(3), I(5)}, 0.5);
    c.AddWorld({I(4), I(6)}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 1, "B")});
    c.AddWorld({I(7)}, 0.5);
    c.AddWorld({I(8)}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("S", 0, "C")});
    c.AddWorld({testutil::S("a")}, 0.5);
    c.AddWorld({testutil::S("b")}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("S", 0, "D"), FieldKey("S", 1, "C")});
    c.AddWorld({testutil::S("c"), testutil::S("e")}, 0.5);
    c.AddWorld({testutil::S("d"), testutil::S("f")}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("S", 1, "D")});
    c.AddWorld({testutil::S("g")}, 0.5);
    c.AddWorld({testutil::S("h")}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  ExpectOracleEquivalent(wsd,
                         Plan::Product(Plan::Scan("R"), Plan::Scan("S")),
                         "Fig14");
  // The product does not inflate the number of components (values are
  // copied into existing ones).
  Wsd wsd2 = wsd;
  ASSERT_TRUE(WsdProduct(wsd2, "R", "S", "T").ok());
  EXPECT_EQ(wsd2.NumLiveComponents(), 6u);
}

TEST(WsdAlgebraGolden, Figure15Projection) {
  // Figure 15: two worlds {t1} and {t2}; π_A must not merge them into one
  // world with both tuples.
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A", "B"}), 2).ok());
  {
    Component c({FieldKey("R", 0, "A")});
    c.AddWorld({testutil::S("a")}, 1.0);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 1, "A")});
    c.AddWorld({testutil::S("b")}, 1.0);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 0, "B"), FieldKey("R", 1, "B")});
    c.AddWorld({testutil::S("c"), testutil::Bot()}, 0.5);
    c.AddWorld({testutil::Bot(), testutil::S("d")}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  Wsd copy = wsd;
  ASSERT_TRUE(WsdProject(copy, "R", "P", {"A"}).ok());
  ASSERT_TRUE(copy.Validate().ok());
  auto worlds = CollapseWorlds(copy.EnumerateWorlds(100, {"P"}).value());
  ASSERT_EQ(worlds.size(), 2u);
  for (const auto& w : worlds) {
    EXPECT_EQ(w.db.GetRelation("P").value()->NumRows(), 1u);
  }
  ExpectOracleEquivalent(wsd, Plan::Project({"A"}, Plan::Scan("R")),
                         "Fig15");
}

TEST(WsdAlgebraGolden, UnionAndDifferenceOnFigure10) {
  // R ∪ σ_{A=B}(R) and R − σ_{C=7}(R).
  ExpectOracleEquivalent(
      Figure10(),
      Plan::Union(Plan::Scan("R"),
                  Plan::Select(Predicate::CmpAttr("A", CmpOp::kEq, "B"),
                               Plan::Scan("R"))),
      "union");
  ExpectOracleEquivalent(
      Figure10(),
      Plan::Difference(Plan::Scan("R"),
                       Plan::Select(Predicate::Cmp("C", CmpOp::kEq, I(7)),
                                    Plan::Scan("R"))),
      "difference");
}

TEST(WsdAlgebraGolden, RenameAndJoin) {
  ExpectOracleEquivalent(
      Figure10(), Plan::Rename({{"A", "X"}}, Plan::Scan("R")), "rename");
  // Self-join on renamed copies: R ⋈_{A=X} δ(R).
  Plan renamed = Plan::Rename({{"A", "X"}, {"B", "Y"}, {"C", "Z"}},
                              Plan::Scan("R"));
  ExpectOracleEquivalent(
      Figure10(),
      Plan::Join(Predicate::CmpAttr("A", CmpOp::kEq, "X"), Plan::Scan("R"),
                 renamed),
      "join");
}

TEST(WsdAlgebraGolden, OrAndNotPredicates) {
  ExpectOracleEquivalent(
      Figure10(),
      Plan::Select(Predicate::Or(Predicate::Cmp("A", CmpOp::kEq, I(1)),
                                 Predicate::Cmp("B", CmpOp::kEq, I(4))),
                   Plan::Scan("R")),
      "or");
  ExpectOracleEquivalent(
      Figure10(),
      Plan::Select(Predicate::Not(Predicate::And(
                       Predicate::Cmp("A", CmpOp::kGt, I(1)),
                       Predicate::Cmp("C", CmpOp::kLt, I(7)))),
                   Plan::Scan("R")),
      "not");
}

TEST(WsdAlgebraGolden, NegatePredicateFlipsOperators) {
  // The negation pushdown lives in the shared engine driver now.
  Predicate p = Predicate::Cmp("A", CmpOp::kLt, I(3));
  Predicate n = engine::NegatePredicate(p);
  EXPECT_EQ(n.op(), CmpOp::kGe);
  Predicate dn = engine::NegatePredicate(Predicate::Not(p));
  EXPECT_EQ(dn.op(), CmpOp::kLt);
}

// ---------------------------------------------------------------------------
// Randomized property tests: every operator against the per-world oracle.
// ---------------------------------------------------------------------------

class WsdAlgebraProperty : public ::testing::TestWithParam<int> {};

std::vector<RelSpec> Specs() {
  return {RelSpec{"R", {"A", "B"}, 2, 3}, RelSpec{"S", {"C", "D"}, 2, 3},
          RelSpec{"R2", {"A", "B"}, 2, 3}};
}

TEST_P(WsdAlgebraProperty, SelectConstOracle) {
  Rng rng(GetParam());
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectOracleEquivalent(
      wsd,
      Plan::Select(Predicate::Cmp("A", CmpOp::kEq, I(1)), Plan::Scan("R")));
  ExpectOracleEquivalent(
      wsd,
      Plan::Select(Predicate::Cmp("B", CmpOp::kGt, I(0)), Plan::Scan("R")));
}

TEST_P(WsdAlgebraProperty, SelectAttrAttrOracle) {
  Rng rng(GetParam() + 1000);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectOracleEquivalent(
      wsd,
      Plan::Select(Predicate::CmpAttr("A", CmpOp::kEq, "B"), Plan::Scan("R")));
  ExpectOracleEquivalent(
      wsd,
      Plan::Select(Predicate::CmpAttr("A", CmpOp::kLt, "B"), Plan::Scan("R")));
}

TEST_P(WsdAlgebraProperty, ProjectOracle) {
  Rng rng(GetParam() + 2000);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectOracleEquivalent(wsd, Plan::Project({"A"}, Plan::Scan("R")));
  ExpectOracleEquivalent(wsd, Plan::Project({"B"}, Plan::Scan("R")));
}

TEST_P(WsdAlgebraProperty, ProductOracle) {
  Rng rng(GetParam() + 3000);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectOracleEquivalent(wsd,
                         Plan::Product(Plan::Scan("R"), Plan::Scan("S")));
}

TEST_P(WsdAlgebraProperty, UnionOracle) {
  Rng rng(GetParam() + 4000);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectOracleEquivalent(wsd, Plan::Union(Plan::Scan("R"), Plan::Scan("R2")));
}

TEST_P(WsdAlgebraProperty, DifferenceOracle) {
  Rng rng(GetParam() + 5000);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectOracleEquivalent(
      wsd, Plan::Difference(Plan::Scan("R"), Plan::Scan("R2")));
}

TEST_P(WsdAlgebraProperty, ProjectAfterSelectOracle) {
  // The composition that exercises ⊥-propagation through projection.
  Rng rng(GetParam() + 6000);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectOracleEquivalent(
      wsd,
      Plan::Project({"A"},
                    Plan::Select(Predicate::Cmp("B", CmpOp::kEq, I(1)),
                                 Plan::Scan("R"))));
}

TEST_P(WsdAlgebraProperty, JoinOracle) {
  Rng rng(GetParam() + 7000);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectOracleEquivalent(
      wsd, Plan::Join(Predicate::CmpAttr("A", CmpOp::kEq, "C"),
                      Plan::Scan("R"), Plan::Scan("S")));
}

TEST_P(WsdAlgebraProperty, ComplexQueryOracle) {
  Rng rng(GetParam() + 8000);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  // π_A(σ_{A=1}(R)) ∪ π_A(σ_{B=2}(R)) — the paper's correlated-subquery
  // example shape (Section 4).
  Plan q = Plan::Union(
      Plan::Project({"A"}, Plan::Select(Predicate::Cmp("A", CmpOp::kEq, I(1)),
                                        Plan::Scan("R"))),
      Plan::Project({"A"}, Plan::Select(Predicate::Cmp("B", CmpOp::kEq, I(2)),
                                        Plan::Scan("R"))));
  ExpectOracleEquivalent(wsd, q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WsdAlgebraProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace maywsd::core
