// The belief subsystem against its per-world reference oracle.
//
// Conditioning is encoded as state (the alive marker dies in the worlds an
// observation eliminates), so the whole knowledge surface is specified by
// explicit world enumeration: simulate every world through the same update
// and observation script with rel::ApplyUpdate, call a world alive iff its
// marker relation is non-empty, and demand
//
//   Knows(R, t)              == every alive world contains t
//   ConsidersPossible(R, t)  == some alive world contains t
//   Confidence(R, t)         == P(alive ∧ t ∈ R) / P(alive)
//
// on all four backends, tuple by tuple over the full probe grid. The
// successor-cache tests pin the Speculate contract (a structurally equal
// batch re-pins the same fork — no new fork, no re-applied ops), the leak
// test demands exact store node/cell equality after a game tears down, and
// the stress test races Speculate / Step / Observe / knowledge queries for
// the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/session.h"
#include "belief/belief.h"
#include "core/component_store.h"
#include "rel/update.h"
#include "tests/test_util.h"

namespace maywsd::belief {
namespace {

using api::BackendKind;
using api::BackendKindName;
using api::Session;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::UpdateOp;
using rel::Value;
using testutil::I;
using testutil::RelSpec;

rel::Relation Marker(const char* name, const char* attr) {
  rel::Relation r(rel::Schema{{attr, rel::AttrType::kInt}}, name);
  r.AppendRow({I(0)});
  return r;
}

/// The explicit one-world-at-a-time simulation the agent must agree with.
/// Worlds carry the same marker relations the agent registers, and every
/// batch (moves and ObservationOps alike) runs through rel::ApplyUpdate.
struct WorldOracle {
  std::vector<core::PossibleWorld> worlds;

  static WorldOracle Over(const std::vector<core::PossibleWorld>& base) {
    WorldOracle o{base};
    for (core::PossibleWorld& w : o.worlds) {
      w.db.PutRelation(Marker(kAliveRelation, kAliveAttr));
      w.db.PutRelation(Marker(kUnitRelation, kUnitAttr));
    }
    return o;
  }

  Status Apply(std::span<const UpdateOp> ops) {
    for (core::PossibleWorld& w : worlds) {
      for (const UpdateOp& op : ops) {
        MAYWSD_RETURN_IF_ERROR(rel::ApplyUpdate(w.db, op));
      }
    }
    return Status::Ok();
  }

  bool Alive(const core::PossibleWorld& w) const {
    auto r = w.db.GetRelation(kAliveRelation);
    return r.ok() && r.value()->NumRows() > 0;
  }

  bool Contains(const core::PossibleWorld& w, const std::string& rel,
                std::span<const Value> tuple) const {
    auto r = w.db.GetRelation(rel);
    return r.ok() && r.value()->ContainsRow(tuple);
  }

  double AliveMass() const {
    double mass = 0;
    for (const core::PossibleWorld& w : worlds) {
      if (Alive(w)) mass += w.prob;
    }
    return mass;
  }

  bool Knows(const std::string& rel, std::span<const Value> tuple) const {
    for (const core::PossibleWorld& w : worlds) {
      if (Alive(w) && !Contains(w, rel, tuple)) return false;
    }
    return true;  // vacuously over an all-dead world set
  }

  bool Possible(const std::string& rel, std::span<const Value> tuple) const {
    for (const core::PossibleWorld& w : worlds) {
      if (Alive(w) && Contains(w, rel, tuple)) return true;
    }
    return false;
  }

  /// nullopt when every world is dead (the agent reports Inconsistent).
  std::optional<double> Confidence(const std::string& rel,
                                   std::span<const Value> tuple) const {
    double alive = 0, with_t = 0;
    for (const core::PossibleWorld& w : worlds) {
      if (!Alive(w)) continue;
      alive += w.prob;
      if (Contains(w, rel, tuple)) with_t += w.prob;
    }
    if (alive < 1e-9) return std::nullopt;
    return with_t / alive;
  }
};

/// Every tuple over [0, domain)^arity — the probe grid the oracle and the
/// agent are compared on.
std::vector<std::vector<Value>> ProbeGrid(const RelSpec& spec) {
  std::vector<std::vector<Value>> grid;
  size_t arity = spec.attrs.size();
  std::vector<int64_t> digits(arity, 0);
  for (;;) {
    std::vector<Value> probe;
    probe.reserve(arity);
    for (int64_t d : digits) probe.push_back(I(d));
    grid.push_back(std::move(probe));
    size_t i = 0;
    while (i < arity && ++digits[i] == spec.domain) digits[i++] = 0;
    if (i == arity) break;
  }
  return grid;
}

UpdateOp RandomInsert(Rng& rng, const RelSpec& spec) {
  rel::Relation rows(rel::Schema::FromNames(spec.attrs), spec.name);
  std::vector<Value> row;
  row.reserve(spec.attrs.size());
  for (size_t a = 0; a < spec.attrs.size(); ++a) {
    row.push_back(I(static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(spec.domain)))));
  }
  rows.AppendRow(row);
  return UpdateOp::InsertTuples(spec.name, std::move(rows));
}

UpdateOp RandomDelete(Rng& rng, const std::vector<RelSpec>& specs) {
  const RelSpec& spec = specs[rng.Uniform(specs.size())];
  const std::string& attr = spec.attrs[rng.Uniform(spec.attrs.size())];
  Value v = I(static_cast<int64_t>(
      rng.Uniform(static_cast<uint64_t>(spec.domain))));
  UpdateOp op = UpdateOp::DeleteWhere(spec.name,
                                      Predicate::Cmp(attr, CmpOp::kEq, v));
  if (rng.Uniform(2) == 0) {
    const RelSpec& g = specs[rng.Uniform(specs.size())];
    Value bound = I(static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(g.domain))));
    op = op.When(Plan::Select(Predicate::Cmp(g.attrs[0], CmpOp::kLe, bound),
                              Plan::Scan(g.name)));
  }
  return op;
}

/// A random conditioning observation: "σ_{AθB}(R) is non-empty". θ is kept
/// permissive (kLe against a high bound most of the time) so scripts only
/// occasionally eliminate worlds and rarely kill the whole set — both
/// regimes stay covered across seeds.
std::vector<UpdateOp> RandomObservation(Rng& rng,
                                        const std::vector<RelSpec>& specs) {
  const RelSpec& spec = specs[rng.Uniform(specs.size())];
  const std::string& attr = spec.attrs[rng.Uniform(spec.attrs.size())];
  CmpOp op = rng.Uniform(4) == 0 ? CmpOp::kEq : CmpOp::kLe;
  Value v = I(static_cast<int64_t>(
      rng.Uniform(static_cast<uint64_t>(spec.domain))));
  return ObservationOps(
      Plan::Select(Predicate::Cmp(attr, op, v), Plan::Scan(spec.name)));
}

/// One script round: a couple of moves, sometimes ending in an observation.
std::vector<UpdateOp> RandomRound(Rng& rng,
                                  const std::vector<RelSpec>& specs) {
  std::vector<UpdateOp> round;
  size_t moves = 1 + rng.Uniform(2);
  for (size_t i = 0; i < moves; ++i) {
    if (rng.Uniform(2) == 0) {
      round.push_back(RandomInsert(rng, specs[rng.Uniform(specs.size())]));
    } else {
      round.push_back(RandomDelete(rng, specs));
    }
  }
  if (rng.Uniform(2) == 0) {
    for (UpdateOp& op : RandomObservation(rng, specs)) {
      round.push_back(std::move(op));
    }
  }
  return round;
}

/// The reference oracle: random worlds, a random move/observation script,
/// and after every round the full probe grid compared between the agent
/// and the explicit per-world simulation — on every backend.
TEST(BeliefOracle, KnowledgeSurfaceMatchesPerWorldSimulation) {
  const std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                      RelSpec{"S", {"V"}, 2, 3}};
  for (uint64_t seed : {7u, 21u, 98u}) {
    testutil::SeededRng rng(seed);
    MAYWSD_SEED_TRACE(rng);
    const std::vector<core::PossibleWorld> base =
        testutil::RandomWorlds(rng, specs, 4);
    auto wsd_or = core::WsdFromWorlds(base);
    ASSERT_TRUE(wsd_or.ok());
    core::Wsd wsd = std::move(wsd_or).value();
    ASSERT_TRUE(core::NormalizeWsd(wsd).ok());
    std::vector<std::vector<UpdateOp>> script;
    for (int round = 0; round < 5; ++round) {
      script.push_back(RandomRound(rng, specs));
    }

    for (BackendKind kind : testutil::AllBackendKinds()) {
      SCOPED_TRACE(BackendKindName(kind));
      auto session = testutil::OpenSessionOver(kind, wsd);
      ASSERT_TRUE(session.ok());
      auto agent_or = Agent::Make("oracle", std::move(session).value());
      ASSERT_TRUE(agent_or.ok());
      Agent agent = std::move(agent_or).value();
      WorldOracle oracle = WorldOracle::Over(base);

      for (size_t round = 0; round < script.size(); ++round) {
        SCOPED_TRACE(::testing::Message() << "round " << round);
        ASSERT_TRUE(agent.Observe(std::span<const UpdateOp>(script[round]))
                        .ok());
        ASSERT_TRUE(oracle.Apply(script[round]).ok());

        for (const RelSpec& spec : specs) {
          for (const std::vector<Value>& probe : ProbeGrid(spec)) {
            SCOPED_TRACE(::testing::Message()
                         << spec.name << " probe " << probe[0].ToString());
            auto knows = agent.Knows(spec.name, probe);
            ASSERT_TRUE(knows.ok());
            EXPECT_EQ(knows.value(), oracle.Knows(spec.name, probe));
            auto possible = agent.ConsidersPossible(spec.name, probe);
            ASSERT_TRUE(possible.ok());
            EXPECT_EQ(possible.value(), oracle.Possible(spec.name, probe));
            std::optional<double> want = oracle.Confidence(spec.name, probe);
            auto conf = agent.Confidence(spec.name, probe);
            if (want.has_value()) {
              ASSERT_TRUE(conf.ok());
              EXPECT_NEAR(conf.value(), *want, 1e-9);
            } else {
              EXPECT_FALSE(conf.ok());
            }
          }
        }
      }
      // Re-asking within a round hits the witness cache ("live:R" serves
      // ConsidersPossible and Confidence alike).
      EXPECT_GT(agent.Stats().knowledge_cache_hits, 0u);
      EXPECT_TRUE(testutil::ValidateSession(agent.session()).ok());
    }
  }
}

rel::Relation OneIntRelation(const char* name, const char* attr,
                             std::vector<int64_t> values) {
  rel::Relation r(rel::Schema::FromNames({attr}), name);
  for (int64_t v : values) r.AppendRow({I(v)});
  r.SortDedup();
  return r;
}

std::vector<core::PossibleWorld> ThreeWorldDeal() {
  // P(w1)=0.5 R={1}, P(w2)=0.3 R={1,2}, P(w3)=0.2 R={}.
  std::vector<core::PossibleWorld> worlds(3);
  worlds[0].prob = 0.5;
  worlds[0].db.PutRelation(OneIntRelation("R", "A", {1}));
  worlds[1].prob = 0.3;
  worlds[1].db.PutRelation(OneIntRelation("R", "A", {1, 2}));
  worlds[2].prob = 0.2;
  worlds[2].db.PutRelation(OneIntRelation("R", "A", {}));
  return worlds;
}

Result<Session> OpenOver(BackendKind kind,
                         const std::vector<core::PossibleWorld>& worlds) {
  MAYWSD_ASSIGN_OR_RETURN(core::Wsd wsd, core::WsdFromWorlds(worlds));
  MAYWSD_RETURN_IF_ERROR(core::NormalizeWsd(wsd));
  return testutil::OpenSessionOver(kind, wsd);
}

/// Deterministic conditioning arithmetic on a three-world deal, including
/// the all-worlds-eliminated regime.
TEST(BeliefKnowledge, ConditioningArithmeticIsExact) {
  const Value one[] = {I(1)};
  const Value two[] = {I(2)};
  for (BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    auto session = OpenOver(kind, ThreeWorldDeal());
    ASSERT_TRUE(session.ok());
    auto agent_or = Agent::Make("a", std::move(session).value());
    ASSERT_TRUE(agent_or.ok());
    Agent agent = std::move(agent_or).value();

    EXPECT_FALSE(agent.Knows("R", one).value());  // w3 lacks (1)
    EXPECT_TRUE(agent.ConsidersPossible("R", two).value());
    EXPECT_NEAR(agent.Confidence("R", one).value(), 0.8, 1e-12);
    EXPECT_TRUE(agent.Believes("R", one, 0.75).value());
    EXPECT_FALSE(agent.Believes("R", one, 0.85).value());

    // Observe "R contains 1": w3 dies; the rest renormalizes.
    ASSERT_TRUE(agent
                    .Observe(Plan::Select(Predicate::Cmp("A", CmpOp::kEq, I(1)),
                                          Plan::Scan("R")))
                    .ok());
    EXPECT_TRUE(agent.Knows("R", one).value());
    EXPECT_NEAR(agent.Confidence("R", two).value(), 0.3 / 0.8, 1e-12);

    // An impossible observation kills every world: Knows goes vacuous,
    // nothing is possible, and conditional confidence is undefined.
    ASSERT_TRUE(agent
                    .Observe(Plan::Select(Predicate::Cmp("A", CmpOp::kEq, I(5)),
                                          Plan::Scan("R")))
                    .ok());
    EXPECT_TRUE(agent.Knows("R", two).value());
    EXPECT_FALSE(agent.ConsidersPossible("R", one).value());
    EXPECT_FALSE(agent.Confidence("R", one).ok());
  }
}

/// A game relation squatting on a reserved marker name with the wrong
/// shape must be rejected at agent construction.
TEST(BeliefKnowledge, RejectsMalformedReservedRelations) {
  Session session = Session::Open(BackendKind::kWsdt);
  rel::Relation bad(rel::Schema::FromNames({"X", "Y"}), kAliveRelation);
  ASSERT_TRUE(session.Register(bad).ok());
  EXPECT_FALSE(Agent::Make("a", std::move(session)).ok());
}

std::vector<UpdateOp> SentinelInsert(int64_t v) {
  rel::Relation rows(rel::Schema::FromNames({"A"}), "R");
  rows.AppendRow({I(v)});
  std::vector<UpdateOp> batch;
  batch.push_back(UpdateOp::InsertTuples("R", std::move(rows))
                      .When(Plan::Select(Predicate::Cmp("A", CmpOp::kLe, I(9)),
                                         Plan::Scan("Base"))));
  return batch;
}

Result<Session> SmallGameSession(BackendKind kind) {
  std::vector<core::PossibleWorld> worlds(2);
  worlds[0].prob = 0.5;
  worlds[0].db.PutRelation(OneIntRelation("R", "A", {1}));
  worlds[1].prob = 0.5;
  worlds[1].db.PutRelation(OneIntRelation("R", "A", {1, 2}));
  for (core::PossibleWorld& w : worlds) {
    w.db.PutRelation(OneIntRelation("Base", "A", {1}));
  }
  return OpenOver(kind, worlds);
}

/// The successor-cache contract: a structurally equal batch (rebuilt from
/// scratch — value equality, not pointer identity) re-pins the *same*
/// successor with zero new forks and zero re-applied ops.
TEST(SuccessorCache, EqualBatchRepinsWithoutForkOrApply) {
  const Value sentinel[] = {I(77)};
  for (BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    Game game;
    auto session = SmallGameSession(kind);
    ASSERT_TRUE(session.ok());
    auto added = game.AddAgent("a", std::move(session).value());
    ASSERT_TRUE(added.ok());

    std::vector<UpdateOp> batch = SentinelInsert(77);
    auto succ1 = game.Speculate("a", batch);
    ASSERT_TRUE(succ1.ok());
    BeliefStats s1 = game.Stats();
    EXPECT_EQ(s1.speculations, 1u);
    EXPECT_EQ(s1.successor_misses, 1u);
    EXPECT_EQ(s1.forks, 1u);
    EXPECT_EQ(s1.applies, batch.size());

    // The successor sees the applied action; the agent does not.
    EXPECT_TRUE(succ1.value()->ConsidersPossible("R", sentinel).value());
    EXPECT_TRUE(succ1.value()->Knows("R", sentinel).value());
    EXPECT_FALSE(
        game.agent("a")->ConsidersPossible("R", sentinel).value());

    std::vector<UpdateOp> rebuilt = SentinelInsert(77);
    auto succ2 = game.Speculate("a", rebuilt);
    ASSERT_TRUE(succ2.ok());
    EXPECT_EQ(succ1.value().get(), succ2.value().get());
    BeliefStats s2 = game.Stats();
    EXPECT_EQ(s2.successor_hits, 1u);
    EXPECT_EQ(s2.forks, s1.forks) << "cache hit must not fork";
    EXPECT_EQ(s2.applies, s1.applies) << "cache hit must not re-apply";

    // A different batch is a different successor.
    std::vector<UpdateOp> other = SentinelInsert(78);
    auto succ3 = game.Speculate("a", other);
    ASSERT_TRUE(succ3.ok());
    EXPECT_NE(succ1.value().get(), succ3.value().get());
  }
}

TEST(SuccessorCache, StepAndObserveInvalidate) {
  for (BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    Game game;
    auto sa = SmallGameSession(kind);
    auto sb = SmallGameSession(kind);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    ASSERT_TRUE(game.AddAgent("a", std::move(sa).value()).ok());
    ASSERT_TRUE(game.AddAgent("b", std::move(sb).value()).ok());

    std::vector<UpdateOp> batch = SentinelInsert(77);
    ASSERT_TRUE(game.Speculate("a", batch).ok());
    ASSERT_TRUE(game.Speculate("b", batch).ok());
    EXPECT_EQ(game.Stats().successor_misses, 2u);

    // A step advances the real state: every cached successor is stale.
    std::vector<UpdateOp> step = SentinelInsert(5);
    ASSERT_TRUE(game.Step(step).ok());
    ASSERT_TRUE(game.Speculate("a", batch).ok());
    EXPECT_EQ(game.Stats().successor_misses, 3u);

    // A private observation invalidates that agent's successors only.
    ASSERT_TRUE(game.Speculate("b", batch).ok());
    BeliefStats before = game.Stats();
    ASSERT_TRUE(game.Observe("b",
                             Plan::Select(Predicate::Cmp("A", CmpOp::kEq, I(1)),
                                          Plan::Scan("R")))
                    .ok());
    ASSERT_TRUE(game.Speculate("a", batch).ok());
    ASSERT_TRUE(game.Speculate("b", batch).ok());
    BeliefStats after = game.Stats();
    EXPECT_EQ(after.successor_hits, before.successor_hits + 1);  // a hit
    EXPECT_EQ(after.successor_misses, before.successor_misses + 1);  // b miss
  }
}

/// Step applies to every agent; CommonlyKnown is the everybody-knows
/// conjunction and flips as a private observation resolves one agent's
/// uncertainty.
TEST(BeliefGame, StepBroadcastsAndCommonKnowledgeFollows) {
  const Value one[] = {I(1)};
  const Value two[] = {I(2)};
  for (BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    Game game;
    // Agent a is certain of R ⊇ {1}; agent b considers R = {1} and
    // R = {1,2} equally possible.
    std::vector<core::PossibleWorld> certain(1);
    certain[0].prob = 1.0;
    certain[0].db.PutRelation(OneIntRelation("R", "A", {1}));
    certain[0].db.PutRelation(OneIntRelation("Base", "A", {1}));
    auto sa = OpenOver(kind, certain);
    auto sb = SmallGameSession(kind);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    ASSERT_TRUE(game.AddAgent("a", std::move(sa).value()).ok());
    ASSERT_TRUE(game.AddAgent("b", std::move(sb).value()).ok());

    EXPECT_TRUE(game.CommonlyKnown("R", one).value());
    EXPECT_FALSE(game.CommonlyKnown("R", two).value());  // b is unsure

    // b privately learns that 2 ∈ R.
    ASSERT_TRUE(game.Observe("b",
                             Plan::Select(Predicate::Cmp("A", CmpOp::kEq, I(2)),
                                          Plan::Scan("R")))
                    .ok());
    EXPECT_FALSE(game.CommonlyKnown("R", two).value());  // a still lacks 2

    // A public move inserts 2 everywhere: now everybody knows it.
    rel::Relation rows(rel::Schema::FromNames({"A"}), "R");
    rows.AppendRow({I(2)});
    std::vector<UpdateOp> step;
    step.push_back(UpdateOp::InsertTuples("R", std::move(rows)));
    ASSERT_TRUE(game.Step(step).ok());
    EXPECT_TRUE(game.CommonlyKnown("R", two).value());
    EXPECT_EQ(game.Stats().steps, 1u);

    EXPECT_FALSE(game.Speculate("ghost", step).ok());
    EXPECT_EQ(game.agent("ghost"), nullptr);
  }
}

void RunBeliefWorkload(BackendKind kind) {
  Game game;
  auto sa = SmallGameSession(kind);
  auto sb = SmallGameSession(kind);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  ASSERT_TRUE(game.AddAgent("a", std::move(sa).value()).ok());
  ASSERT_TRUE(game.AddAgent("b", std::move(sb).value()).ok());
  const Value one[] = {I(1)};
  const Value two[] = {I(2)};
  ASSERT_TRUE(game.Observe("a",
                           Plan::Select(Predicate::Cmp("A", CmpOp::kEq, I(2)),
                                        Plan::Scan("R")))
                  .ok());
  std::vector<UpdateOp> batch = SentinelInsert(77);
  auto succ = game.Speculate("a", batch);
  ASSERT_TRUE(succ.ok());
  ASSERT_TRUE(succ.value()->Confidence("R", two).ok());
  ASSERT_TRUE(game.Speculate("a", SentinelInsert(77)).ok());
  ASSERT_TRUE(game.Step(SentinelInsert(5)).ok());
  ASSERT_TRUE(game.agent("a")->Knows("R", one).ok());
  ASSERT_TRUE(game.agent("b")->Confidence("R", two).ok());
  ASSERT_TRUE(game.CommonlyKnown("R", one).ok());
}

/// A full game (agents, observations, speculation, a step, queries) must
/// release the interned store exactly on teardown: the fork family, the
/// witness materializations and the successor cache retain nothing.
TEST(BeliefLeakCheck, GameTeardownReleasesStoreExactly) {
  for (BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    RunBeliefWorkload(kind);  // warm-up: first-touch interning settles
    core::store::StoreStats before = core::store::GetStoreStats();
    RunBeliefWorkload(kind);
    core::store::StoreStats after = core::store::GetStoreStats();
    EXPECT_EQ(after.live_nodes, before.live_nodes)
        << "dead game leaked payload nodes";
    EXPECT_EQ(after.live_cells, before.live_cells)
        << "dead game leaked value cells";
  }
}

/// The TSan stress: speculators expanding (and re-pinning) successors,
/// a stepper advancing the real state, a private observer and a knowledge
/// querier, all racing on one game. Exercises the game-mutex / knowledge-
/// mutex / session-lock ordering and the invalidation paths; every call
/// must succeed and the cache counters must reconcile.
TEST(BeliefStress, ConcurrentSpeculateStepObserveQuery) {
  constexpr int kSteps = 6;
  constexpr int kSpeculators = 2;
  for (BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    Game game;
    auto sa = SmallGameSession(kind);
    auto sb = SmallGameSession(kind);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    ASSERT_TRUE(game.AddAgent("a", std::move(sa).value()).ok());
    ASSERT_TRUE(game.AddAgent("b", std::move(sb).value()).ok());

    std::atomic<bool> done{false};
    std::vector<std::thread> threads;
    for (int s = 0; s < kSpeculators; ++s) {
      threads.emplace_back([&game, &done, s] {
        const char* agent = (s % 2 == 0) ? "a" : "b";
        const Value sentinel[] = {I(70 + s)};
        size_t i = 0;
        do {
          auto succ = game.Speculate(agent, SentinelInsert(
                                                static_cast<int64_t>(70 + s +
                                                                     i++ % 3)));
          ASSERT_TRUE(succ.ok());
          ASSERT_TRUE(succ.value()->ConsidersPossible("R", sentinel).ok());
        } while (!done.load(std::memory_order_acquire));
      });
    }
    threads.emplace_back([&game, &done] {
      const Value one[] = {I(1)};
      do {
        ASSERT_TRUE(game.agent("a")->Knows("R", one).ok());
        ASSERT_TRUE(game.agent("b")->Confidence("R", one).ok());
        ASSERT_TRUE(game.CommonlyKnown("R", one).ok());
      } while (!done.load(std::memory_order_acquire));
    });
    threads.emplace_back([&game, &done] {
      // "Base is non-empty" holds in every world: the conditioning guard
      // runs for real but never kills anything, so the querier's
      // Confidence stays well-defined throughout.
      do {
        ASSERT_TRUE(game.Observe("b", Plan::Scan("Base")).ok());
      } while (!done.load(std::memory_order_acquire));
    });
    std::thread stepper([&game, &done] {
      for (int i = 0; i < kSteps; ++i) {
        ASSERT_TRUE(game.Step(SentinelInsert(5 + i)).ok());
      }
      done.store(true, std::memory_order_release);
    });
    stepper.join();
    for (std::thread& t : threads) t.join();

    BeliefStats stats = game.Stats();
    EXPECT_EQ(stats.speculations, stats.successor_hits +
                                      stats.successor_misses);
    EXPECT_EQ(stats.steps, static_cast<uint64_t>(kSteps));
    EXPECT_EQ(stats.forks, stats.successor_misses);
    EXPECT_TRUE(testutil::ValidateSession(game.agent("a")->session()).ok());
    EXPECT_TRUE(testutil::ValidateSession(game.agent("b")->session()).ok());
  }
}

}  // namespace
}  // namespace maywsd::belief
