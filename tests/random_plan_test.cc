// Randomized whole-plan property tests: random relational algebra trees
// are evaluated through (a) per-world brute force, (b) the Figure 9 WSD
// operators, and (c) the Section 5 WSDT operators — all three must agree
// on every seed (Theorem 1 end to end, including operator composition
// effects like ⊥-propagation across stacked operators).

#include <gtest/gtest.h>

#include <memory>

#include "api/session.h"
#include "rel/eval.h"
#include "rel/optimizer.h"
#include "core/component_store.h"
#include "core/engine/plan_driver.h"
#include "core/engine/uniform_backend.h"
#include "core/engine/urel_backend.h"
#include "core/engine/wsd_backend.h"
#include "core/engine/wsdt_backend.h"
#include "core/uniform.h"
#include "core/urel.h"
#include "core/wsd_algebra.h"
#include "core/wsdt_algebra.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using testutil::I;
using testutil::RelSpec;
using testutil::SeededRng;

/// Draws a random comparison predicate over attributes of `attrs`.
Predicate RandomPredicate(Rng& rng, const std::vector<std::string>& attrs,
                          int depth) {
  auto random_cmp = [&]() {
    CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kGe};
    CmpOp op = ops[rng.Uniform(4)];
    const std::string& lhs = attrs[rng.Uniform(attrs.size())];
    if (attrs.size() > 1 && rng.Bernoulli(0.3)) {
      const std::string& rhs = attrs[rng.Uniform(attrs.size())];
      return Predicate::CmpAttr(lhs, op, rhs);
    }
    return Predicate::Cmp(lhs, op, I(static_cast<int64_t>(rng.Uniform(3))));
  };
  if (depth <= 0 || rng.Bernoulli(0.5)) return random_cmp();
  switch (rng.Uniform(3)) {
    case 0:
      return Predicate::And(RandomPredicate(rng, attrs, depth - 1),
                            RandomPredicate(rng, attrs, depth - 1));
    case 1:
      return Predicate::Or(RandomPredicate(rng, attrs, depth - 1),
                           RandomPredicate(rng, attrs, depth - 1));
    default:
      return Predicate::Not(RandomPredicate(rng, attrs, depth - 1));
  }
}

/// Draws a random plan. Attribute bookkeeping: R and R2 have {A,B},
/// S has {C,D}; combining operators are chosen so schemas stay valid.
Plan RandomPlan(Rng& rng, int depth, std::vector<std::string>* out_attrs) {
  if (depth <= 0) {
    switch (rng.Uniform(3)) {
      case 0:
        *out_attrs = {"A", "B"};
        return Plan::Scan("R");
      case 1:
        *out_attrs = {"A", "B"};
        return Plan::Scan("R2");
      default:
        *out_attrs = {"C", "D"};
        return Plan::Scan("S");
    }
  }
  switch (rng.Uniform(5)) {
    case 0: {  // selection
      Plan child = RandomPlan(rng, depth - 1, out_attrs);
      return Plan::Select(RandomPredicate(rng, *out_attrs, 1),
                          std::move(child));
    }
    case 1: {  // projection to one attribute
      Plan child = RandomPlan(rng, depth - 1, out_attrs);
      std::string keep = (*out_attrs)[rng.Uniform(out_attrs->size())];
      *out_attrs = {keep};
      return Plan::Project({keep}, std::move(child));
    }
    case 2: {  // union of two same-leaf subplans
      *out_attrs = {"A", "B"};
      return Plan::Union(Plan::Scan("R"), Plan::Scan("R2"));
    }
    case 3: {  // difference
      *out_attrs = {"A", "B"};
      Plan left = Plan::Select(RandomPredicate(rng, *out_attrs, 0),
                               Plan::Scan("R"));
      return Plan::Difference(std::move(left), Plan::Scan("R2"));
    }
    default: {  // join R ⋈ S
      *out_attrs = {"A", "B", "C", "D"};
      return Plan::Join(Predicate::CmpAttr("A", CmpOp::kEq, "C"),
                        Plan::Scan("R"), Plan::Scan("S"));
    }
  }
}

class RandomPlanProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomPlanProperty, AllThreePathsAgree) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  for (int round = 0; round < 3; ++round) {
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    std::vector<std::string> attrs;
    Plan plan = RandomPlan(rng, 2, &attrs);

    auto worlds = wsd.EnumerateWorlds(100000);
    ASSERT_TRUE(worlds.ok());
    auto expected = EvaluatePerWorld(*worlds, plan, "OUT");
    ASSERT_TRUE(expected.ok()) << plan.ToString();

    // Path (b): WSD operators.
    Wsd wsd_copy = wsd;
    Status st = WsdEvaluate(wsd_copy, plan, "OUT");
    ASSERT_TRUE(st.ok()) << plan.ToString() << ": " << st;
    auto wsd_out = wsd_copy.EnumerateWorlds(4000000, {"OUT"});
    ASSERT_TRUE(wsd_out.ok()) << plan.ToString();
    EXPECT_TRUE(WorldSetsEquivalent(*expected, *wsd_out))
        << "WSD path disagrees on " << plan.ToString() << " seed "
        << GetParam();

    // Path (c): WSDT operators.
    auto wsdt_or = Wsdt::FromWsd(wsd);
    ASSERT_TRUE(wsdt_or.ok());
    Wsdt wsdt = std::move(wsdt_or).value();
    st = WsdtEvaluate(wsdt, plan, "OUT");
    ASSERT_TRUE(st.ok()) << plan.ToString() << ": " << st;
    ASSERT_TRUE(wsdt.Validate().ok()) << plan.ToString();
    auto wsdt_out =
        wsdt.ToWsd().value().EnumerateWorlds(4000000, {"OUT"});
    ASSERT_TRUE(wsdt_out.ok()) << plan.ToString();
    EXPECT_TRUE(WorldSetsEquivalent(*expected, *wsdt_out))
        << "WSDT path disagrees on " << plan.ToString() << " seed "
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanProperty, ::testing::Range(0, 20));

// Cross-backend equivalence oracle: the SAME engine driver
// (core/engine/plan_driver.h) runs the SAME random plan over every
// enrolled backend (testutil::AllBackendKinds — Wsd, Wsdt, the C/F/W
// uniform store, and the columnar U-relations store); all must produce
// identical world-sets, both on the plain plan and after the Section 5
// logical optimizations (which reshape the plan into joins some backends
// execute natively and others lower to product + selections).
class CrossBackendProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrossBackendProperty, UnifiedDriverAgreesOnAllBackends) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 104729 + 71);
  MAYWSD_SEED_TRACE(rng);
  // Companion to the scratch-relation leak check below: every payload
  // node and materialized cell the whole test allocates in the interned
  // component store must be released by the time the stores die.
  store::StoreStats store_before = store::GetStoreStats();
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  for (int round = 0; round < 3; ++round) {
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    std::vector<std::string> attrs;
    Plan plan = RandomPlan(rng, 2, &attrs);

    for (bool optimized : {false, true}) {
      // The first enrolled backend's answer is the reference the rest are
      // compared against.
      std::vector<PossibleWorld> reference;
      bool have_reference = false;
      for (api::BackendKind kind : testutil::AllBackendKinds()) {
        SCOPED_TRACE(::testing::Message()
                     << "backend " << api::BackendKindName(kind)
                     << (optimized ? " (optimized)" : " (plain)"));
        // Per-kind store + backend; only the pair for `kind` is used.
        Wsd wsd_store;
        Wsdt wsdt_store;
        rel::Database udb_store;
        Urel urel_store;
        std::unique_ptr<engine::WorldSetOps> backend;
        switch (kind) {
          case api::BackendKind::kWsd:
            wsd_store = wsd;
            backend = std::make_unique<engine::WsdBackend>(wsd_store);
            break;
          case api::BackendKind::kWsdt: {
            auto wsdt_or = Wsdt::FromWsd(wsd);
            ASSERT_TRUE(wsdt_or.ok());
            wsdt_store = std::move(wsdt_or).value();
            backend = std::make_unique<engine::WsdtBackend>(wsdt_store);
            break;
          }
          case api::BackendKind::kUniform: {
            auto udb_or = ExportUniform(Wsdt::FromWsd(wsd).value());
            ASSERT_TRUE(udb_or.ok());
            udb_store = std::move(udb_or).value();
            backend = std::make_unique<engine::UniformBackend>(udb_store);
            break;
          }
          case api::BackendKind::kUrel: {
            auto urel_or = ExportUrel(Wsdt::FromWsd(wsd).value());
            ASSERT_TRUE(urel_or.ok());
            urel_store = std::move(urel_or).value();
            backend = std::make_unique<engine::UrelBackend>(urel_store);
            break;
          }
        }
        ASSERT_NE(backend, nullptr);

        Status st = optimized ? engine::EvaluateOptimized(*backend, plan,
                                                          "OUT")
                              : engine::Evaluate(*backend, plan, "OUT");
        ASSERT_TRUE(st.ok()) << plan.ToString() << ": " << st;

        // Representation integrity after the whole plan ran.
        Status valid;
        Result<std::vector<PossibleWorld>> out =
            Status::Internal("unset");
        switch (kind) {
          case api::BackendKind::kWsd:
            valid = wsd_store.Validate();
            out = wsd_store.EnumerateWorlds(4000000, {"OUT"});
            break;
          case api::BackendKind::kWsdt:
            valid = wsdt_store.Validate();
            out = wsdt_store.ToWsd().value().EnumerateWorlds(4000000,
                                                             {"OUT"});
            break;
          case api::BackendKind::kUniform: {
            valid = ValidateUniform(udb_store);
            auto back = ImportUniform(udb_store);
            ASSERT_TRUE(back.ok()) << plan.ToString() << ": "
                                   << back.status();
            out = back->ToWsd().value().EnumerateWorlds(4000000, {"OUT"});
            break;
          }
          case api::BackendKind::kUrel: {
            valid = ValidateUrel(urel_store);
            auto back = ImportUrel(urel_store);
            ASSERT_TRUE(back.ok()) << plan.ToString() << ": "
                                   << back.status();
            out = back->ToWsd().value().EnumerateWorlds(4000000, {"OUT"});
            break;
          }
        }
        ASSERT_TRUE(valid.ok()) << plan.ToString() << ": " << valid;
        ASSERT_TRUE(out.ok()) << plan.ToString();

        if (!have_reference) {
          reference = std::move(out).value();
          have_reference = true;
        } else {
          EXPECT_TRUE(WorldSetsEquivalent(reference, *out))
              << "backends disagree on " << plan.ToString() << " seed "
              << GetParam();
        }

        // The scratch-relation lifecycle must not leak intermediates into
        // any representation.
        for (const std::string& name : backend->RelationNames()) {
          EXPECT_NE(name.rfind("__eng_tmp", 0), 0u)
              << "leaked scratch relation " << name;
        }
      }
    }
  }
  store::StoreStats store_after = store::GetStoreStats();
  EXPECT_EQ(store_after.live_nodes, store_before.live_nodes)
      << "leaked component-store nodes";
  EXPECT_EQ(store_after.live_cells, store_before.live_cells)
      << "leaked component-store cells";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossBackendProperty, ::testing::Range(0, 15));

// Randomized pin-teardown leak oracle: pinning a Snapshot and a Fork over
// a random store, reading through both and running a random plan inside
// the fork must release every component-store node and cell once the whole
// session family dies. This is the COW-handle analogue of the scratch
// leak checks above — a dead pin that retains arena growth fails here.
class SnapshotForkLeakProperty : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotForkLeakProperty, PinReadForkRunTeardownReleasesStore) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 50021 + 13);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  store::StoreStats store_before = store::GetStoreStats();
  for (api::BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(api::BackendKindName(kind));
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    auto session_or = testutil::OpenSessionOver(kind, wsd);
    ASSERT_TRUE(session_or.ok());
    api::Session session = std::move(session_or.value());

    std::vector<std::string> attrs;
    Plan plan = RandomPlan(rng, 2, &attrs);
    {
      api::Snapshot snapshot = session.Snapshot();
      api::Session fork = session.Fork();
      // The fork runs (and keeps) a materialized plan result; the
      // snapshot and the parent only read. All of it must die cleanly.
      ASSERT_TRUE(fork.Run(plan, "FORK_OUT").ok()) << plan.ToString();
      ASSERT_TRUE(fork.PossibleTuples("FORK_OUT").ok());
      ASSERT_TRUE(snapshot.PossibleTuples("R").ok());
      ASSERT_TRUE(snapshot.CertainTuples("S").ok());
      EXPECT_FALSE(session.HasRelation("FORK_OUT"));
    }
    ASSERT_TRUE(session.PossibleTuples("R").ok());
  }
  store::StoreStats store_after = store::GetStoreStats();
  EXPECT_EQ(store_after.live_nodes, store_before.live_nodes)
      << "snapshot/fork teardown leaked component-store nodes";
  EXPECT_EQ(store_after.live_cells, store_before.live_cells)
      << "snapshot/fork teardown leaked component-store cells";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotForkLeakProperty,
                         ::testing::Range(0, 10));

class OptimizerProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerProperty, OptimizedPlansAgreeOnPlainEvaluation) {
  // The engine optimizer must preserve set-semantics results on random
  // plans and random instances.
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 3, 3},
                                RelSpec{"S", {"C", "D"}, 3, 3},
                                RelSpec{"R2", {"A", "B"}, 3, 3}};
  for (int round = 0; round < 5; ++round) {
    auto worlds = testutil::RandomWorlds(rng, specs, 1);
    const rel::Database& db = worlds[0].db;
    std::vector<std::string> attrs;
    Plan plan = RandomPlan(rng, 2, &attrs);
    // Wrap in one more selection so the optimizer has something to push.
    plan = Plan::Select(RandomPredicate(rng, attrs, 1), std::move(plan));
    auto opt = rel::Optimize(plan, db);
    ASSERT_TRUE(opt.ok()) << plan.ToString();
    auto a = rel::Evaluate(plan, db);
    auto b = rel::Evaluate(*opt, db);
    ASSERT_TRUE(a.ok()) << plan.ToString();
    ASSERT_TRUE(b.ok()) << opt->ToString();
    EXPECT_TRUE(a->EqualsAsSet(*b))
        << "plan: " << plan.ToString() << "\nopt: " << opt->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerProperty, ::testing::Range(0, 15));

// RunAll column of the oracle: a batched workload with shared subtrees
// evaluated through Session::RunAll (one scratch lifecycle, common-subplan
// cache) must produce, per output, exactly the world set of plan-by-plan
// Run on a fresh session — and the shared subtrees must actually hit the
// cache (Session::Stats()).
class RunAllBatchProperty : public ::testing::TestWithParam<int> {};

TEST_P(RunAllBatchProperty, BatchedWithCacheMatchesPlanByPlan) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 52361 + 29);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  for (int round = 0; round < 2; ++round) {
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    std::vector<std::string> attrs;
    Plan base = RandomPlan(rng, 2, &attrs);
    // A workload sharing `base` as a subtree: the batch must evaluate it
    // once and reuse the materialization for the later plans.
    std::vector<Plan> workload;
    workload.push_back(base);
    workload.push_back(Plan::Select(RandomPredicate(rng, attrs, 1), base));
    workload.push_back(Plan::Project({attrs[rng.Uniform(attrs.size())]},
                                     base));
    std::vector<std::string> outs = {"OUT0", "OUT1", "OUT2"};

    for (api::BackendKind kind : testutil::AllBackendKinds()) {
      auto batch_or = testutil::OpenSessionOver(kind, wsd);
      auto single_or = testutil::OpenSessionOver(kind, wsd);
      ASSERT_TRUE(batch_or.ok() && single_or.ok());
      api::Session batch = std::move(batch_or).value();
      api::Session single = std::move(single_or).value();

      Status st = batch.RunAll(workload, outs);
      ASSERT_TRUE(st.ok()) << base.ToString() << " on "
                           << api::BackendKindName(kind) << ": " << st;
      EXPECT_GT(batch.Stats().cache_hits, 0u)
          << "shared subtree missed the cache on "
          << api::BackendKindName(kind);

      for (size_t i = 0; i < workload.size(); ++i) {
        ASSERT_TRUE(single.Run(workload[i], outs[i]).ok())
            << workload[i].ToString();
      }

      for (const std::string& out : outs) {
        auto batched = testutil::SessionWorlds(batch, 4000000, {out});
        auto plain = testutil::SessionWorlds(single, 4000000, {out});
        ASSERT_TRUE(batched.ok()) << batched.status();
        ASSERT_TRUE(plain.ok()) << plain.status();
        EXPECT_TRUE(WorldSetsEquivalent(*batched, *plain))
            << "RunAll vs Run disagree on " << out << " for "
            << base.ToString() << " over " << api::BackendKindName(kind);
      }
      // No scratch relation may survive the batch lifecycle.
      for (const std::string& name : batch.RelationNames()) {
        EXPECT_NE(name.rfind("__eng_tmp", 0), 0u)
            << "leaked scratch relation " << name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunAllBatchProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace maywsd::core
