// Randomized whole-plan property tests: random relational algebra trees
// are evaluated through (a) per-world brute force, (b) the Figure 9 WSD
// operators, and (c) the Section 5 WSDT operators — all three must agree
// on every seed (Theorem 1 end to end, including operator composition
// effects like ⊥-propagation across stacked operators).

#include <gtest/gtest.h>

#include "api/session.h"
#include "rel/eval.h"
#include "rel/optimizer.h"
#include "core/engine/plan_driver.h"
#include "core/engine/uniform_backend.h"
#include "core/engine/wsd_backend.h"
#include "core/engine/wsdt_backend.h"
#include "core/uniform.h"
#include "core/wsd_algebra.h"
#include "core/wsdt_algebra.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using testutil::I;
using testutil::RelSpec;
using testutil::SeededRng;

/// Draws a random comparison predicate over attributes of `attrs`.
Predicate RandomPredicate(Rng& rng, const std::vector<std::string>& attrs,
                          int depth) {
  auto random_cmp = [&]() {
    CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kGe};
    CmpOp op = ops[rng.Uniform(4)];
    const std::string& lhs = attrs[rng.Uniform(attrs.size())];
    if (attrs.size() > 1 && rng.Bernoulli(0.3)) {
      const std::string& rhs = attrs[rng.Uniform(attrs.size())];
      return Predicate::CmpAttr(lhs, op, rhs);
    }
    return Predicate::Cmp(lhs, op, I(static_cast<int64_t>(rng.Uniform(3))));
  };
  if (depth <= 0 || rng.Bernoulli(0.5)) return random_cmp();
  switch (rng.Uniform(3)) {
    case 0:
      return Predicate::And(RandomPredicate(rng, attrs, depth - 1),
                            RandomPredicate(rng, attrs, depth - 1));
    case 1:
      return Predicate::Or(RandomPredicate(rng, attrs, depth - 1),
                           RandomPredicate(rng, attrs, depth - 1));
    default:
      return Predicate::Not(RandomPredicate(rng, attrs, depth - 1));
  }
}

/// Draws a random plan. Attribute bookkeeping: R and R2 have {A,B},
/// S has {C,D}; combining operators are chosen so schemas stay valid.
Plan RandomPlan(Rng& rng, int depth, std::vector<std::string>* out_attrs) {
  if (depth <= 0) {
    switch (rng.Uniform(3)) {
      case 0:
        *out_attrs = {"A", "B"};
        return Plan::Scan("R");
      case 1:
        *out_attrs = {"A", "B"};
        return Plan::Scan("R2");
      default:
        *out_attrs = {"C", "D"};
        return Plan::Scan("S");
    }
  }
  switch (rng.Uniform(5)) {
    case 0: {  // selection
      Plan child = RandomPlan(rng, depth - 1, out_attrs);
      return Plan::Select(RandomPredicate(rng, *out_attrs, 1),
                          std::move(child));
    }
    case 1: {  // projection to one attribute
      Plan child = RandomPlan(rng, depth - 1, out_attrs);
      std::string keep = (*out_attrs)[rng.Uniform(out_attrs->size())];
      *out_attrs = {keep};
      return Plan::Project({keep}, std::move(child));
    }
    case 2: {  // union of two same-leaf subplans
      *out_attrs = {"A", "B"};
      return Plan::Union(Plan::Scan("R"), Plan::Scan("R2"));
    }
    case 3: {  // difference
      *out_attrs = {"A", "B"};
      Plan left = Plan::Select(RandomPredicate(rng, *out_attrs, 0),
                               Plan::Scan("R"));
      return Plan::Difference(std::move(left), Plan::Scan("R2"));
    }
    default: {  // join R ⋈ S
      *out_attrs = {"A", "B", "C", "D"};
      return Plan::Join(Predicate::CmpAttr("A", CmpOp::kEq, "C"),
                        Plan::Scan("R"), Plan::Scan("S"));
    }
  }
}

class RandomPlanProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomPlanProperty, AllThreePathsAgree) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  for (int round = 0; round < 3; ++round) {
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    std::vector<std::string> attrs;
    Plan plan = RandomPlan(rng, 2, &attrs);

    auto worlds = wsd.EnumerateWorlds(100000);
    ASSERT_TRUE(worlds.ok());
    auto expected = EvaluatePerWorld(*worlds, plan, "OUT");
    ASSERT_TRUE(expected.ok()) << plan.ToString();

    // Path (b): WSD operators.
    Wsd wsd_copy = wsd;
    Status st = WsdEvaluate(wsd_copy, plan, "OUT");
    ASSERT_TRUE(st.ok()) << plan.ToString() << ": " << st;
    auto wsd_out = wsd_copy.EnumerateWorlds(4000000, {"OUT"});
    ASSERT_TRUE(wsd_out.ok()) << plan.ToString();
    EXPECT_TRUE(WorldSetsEquivalent(*expected, *wsd_out))
        << "WSD path disagrees on " << plan.ToString() << " seed "
        << GetParam();

    // Path (c): WSDT operators.
    auto wsdt_or = Wsdt::FromWsd(wsd);
    ASSERT_TRUE(wsdt_or.ok());
    Wsdt wsdt = std::move(wsdt_or).value();
    st = WsdtEvaluate(wsdt, plan, "OUT");
    ASSERT_TRUE(st.ok()) << plan.ToString() << ": " << st;
    ASSERT_TRUE(wsdt.Validate().ok()) << plan.ToString();
    auto wsdt_out =
        wsdt.ToWsd().value().EnumerateWorlds(4000000, {"OUT"});
    ASSERT_TRUE(wsdt_out.ok()) << plan.ToString();
    EXPECT_TRUE(WorldSetsEquivalent(*expected, *wsdt_out))
        << "WSDT path disagrees on " << plan.ToString() << " seed "
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanProperty, ::testing::Range(0, 20));

// Cross-backend equivalence oracle: the SAME engine driver
// (core/engine/plan_driver.h) runs the SAME random plan over a Wsd, over
// the equivalent Wsdt, and over the C/F/W uniform store of that Wsdt; all
// three backends must produce identical world-sets, both on the plain
// plan and after the Section 5 logical optimizations (which reshape the
// plan into joins the WSDT backend executes natively and the other two
// lower to product + selections).
class CrossBackendProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrossBackendProperty, UnifiedDriverAgreesOnAllThreeBackends) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 104729 + 71);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  for (int round = 0; round < 3; ++round) {
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    std::vector<std::string> attrs;
    Plan plan = RandomPlan(rng, 2, &attrs);

    for (bool optimized : {false, true}) {
      Wsd wsd_copy = wsd;
      engine::WsdBackend wsd_backend(wsd_copy);
      Status st = optimized
                      ? engine::EvaluateOptimized(wsd_backend, plan, "OUT")
                      : engine::Evaluate(wsd_backend, plan, "OUT");
      ASSERT_TRUE(st.ok()) << plan.ToString() << ": " << st;
      auto wsd_out = wsd_copy.EnumerateWorlds(4000000, {"OUT"});
      ASSERT_TRUE(wsd_out.ok()) << plan.ToString();

      auto wsdt_or = Wsdt::FromWsd(wsd);
      ASSERT_TRUE(wsdt_or.ok());
      Wsdt wsdt = std::move(wsdt_or).value();
      engine::WsdtBackend wsdt_backend(wsdt);
      st = optimized ? engine::EvaluateOptimized(wsdt_backend, plan, "OUT")
                     : engine::Evaluate(wsdt_backend, plan, "OUT");
      ASSERT_TRUE(st.ok()) << plan.ToString() << ": " << st;
      ASSERT_TRUE(wsdt.Validate().ok()) << plan.ToString();
      auto wsdt_out = wsdt.ToWsd().value().EnumerateWorlds(4000000, {"OUT"});
      ASSERT_TRUE(wsdt_out.ok()) << plan.ToString();

      EXPECT_TRUE(WorldSetsEquivalent(*wsd_out, *wsdt_out))
          << "wsd/wsdt backends disagree on " << plan.ToString() << " seed "
          << GetParam() << (optimized ? " (optimized)" : " (plain)");

      // Third backend: the same plan inside the C/F/W store.
      auto udb_or = ExportUniform(Wsdt::FromWsd(wsd).value());
      ASSERT_TRUE(udb_or.ok());
      rel::Database udb = std::move(udb_or).value();
      engine::UniformBackend uniform_backend(udb);
      st = optimized ? engine::EvaluateOptimized(uniform_backend, plan, "OUT")
                     : engine::Evaluate(uniform_backend, plan, "OUT");
      ASSERT_TRUE(st.ok()) << plan.ToString() << ": " << st;
      ASSERT_TRUE(ValidateUniform(udb).ok())
          << plan.ToString() << ": " << ValidateUniform(udb);
      auto back = ImportUniform(udb);
      ASSERT_TRUE(back.ok()) << plan.ToString() << ": " << back.status();
      auto uniform_out =
          back->ToWsd().value().EnumerateWorlds(4000000, {"OUT"});
      ASSERT_TRUE(uniform_out.ok()) << plan.ToString();
      EXPECT_TRUE(WorldSetsEquivalent(*wsd_out, *uniform_out))
          << "wsd/uniform backends disagree on " << plan.ToString()
          << " seed " << GetParam()
          << (optimized ? " (optimized)" : " (plain)");

      // The scratch-relation lifecycle must not leak intermediates into
      // any decomposition.
      for (const std::string& name : wsd_copy.RelationNames()) {
        EXPECT_NE(name.rfind("__eng_tmp", 0), 0u)
            << "leaked scratch relation " << name;
      }
      for (const std::string& name : wsdt.RelationNames()) {
        EXPECT_NE(name.rfind("__eng_tmp", 0), 0u)
            << "leaked scratch relation " << name;
      }
      for (const std::string& name : uniform_backend.RelationNames()) {
        EXPECT_NE(name.rfind("__eng_tmp", 0), 0u)
            << "leaked scratch relation " << name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossBackendProperty, ::testing::Range(0, 15));

class OptimizerProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerProperty, OptimizedPlansAgreeOnPlainEvaluation) {
  // The engine optimizer must preserve set-semantics results on random
  // plans and random instances.
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 3, 3},
                                RelSpec{"S", {"C", "D"}, 3, 3},
                                RelSpec{"R2", {"A", "B"}, 3, 3}};
  for (int round = 0; round < 5; ++round) {
    auto worlds = testutil::RandomWorlds(rng, specs, 1);
    const rel::Database& db = worlds[0].db;
    std::vector<std::string> attrs;
    Plan plan = RandomPlan(rng, 2, &attrs);
    // Wrap in one more selection so the optimizer has something to push.
    plan = Plan::Select(RandomPredicate(rng, attrs, 1), std::move(plan));
    auto opt = rel::Optimize(plan, db);
    ASSERT_TRUE(opt.ok()) << plan.ToString();
    auto a = rel::Evaluate(plan, db);
    auto b = rel::Evaluate(*opt, db);
    ASSERT_TRUE(a.ok()) << plan.ToString();
    ASSERT_TRUE(b.ok()) << opt->ToString();
    EXPECT_TRUE(a->EqualsAsSet(*b))
        << "plan: " << plan.ToString() << "\nopt: " << opt->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerProperty, ::testing::Range(0, 15));

// RunAll column of the oracle: a batched workload with shared subtrees
// evaluated through Session::RunAll (one scratch lifecycle, common-subplan
// cache) must produce, per output, exactly the world set of plan-by-plan
// Run on a fresh session — and the shared subtrees must actually hit the
// cache (Session::Stats()).
class RunAllBatchProperty : public ::testing::TestWithParam<int> {};

TEST_P(RunAllBatchProperty, BatchedWithCacheMatchesPlanByPlan) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 52361 + 29);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  for (int round = 0; round < 2; ++round) {
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    std::vector<std::string> attrs;
    Plan base = RandomPlan(rng, 2, &attrs);
    // A workload sharing `base` as a subtree: the batch must evaluate it
    // once and reuse the materialization for the later plans.
    std::vector<Plan> workload;
    workload.push_back(base);
    workload.push_back(Plan::Select(RandomPredicate(rng, attrs, 1), base));
    workload.push_back(Plan::Project({attrs[rng.Uniform(attrs.size())]},
                                     base));
    std::vector<std::string> outs = {"OUT0", "OUT1", "OUT2"};

    for (api::BackendKind kind :
         {api::BackendKind::kWsd, api::BackendKind::kWsdt,
          api::BackendKind::kUniform}) {
      auto open = [&]() -> Result<api::Session> {
        switch (kind) {
          case api::BackendKind::kWsd:
            return api::Session::OverWsd(wsd);
          case api::BackendKind::kWsdt: {
            MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, Wsdt::FromWsd(wsd));
            return api::Session::OverWsdt(std::move(wsdt));
          }
          case api::BackendKind::kUniform: {
            MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, Wsdt::FromWsd(wsd));
            return api::Session::OverUniform(wsdt);
          }
        }
        return Status::Internal("unknown kind");
      };
      auto batch_or = open();
      auto single_or = open();
      ASSERT_TRUE(batch_or.ok() && single_or.ok());
      api::Session batch = std::move(batch_or).value();
      api::Session single = std::move(single_or).value();

      Status st = batch.RunAll(workload, outs);
      ASSERT_TRUE(st.ok()) << base.ToString() << " on "
                           << api::BackendKindName(kind) << ": " << st;
      EXPECT_GT(batch.Stats().cache_hits, 0u)
          << "shared subtree missed the cache on "
          << api::BackendKindName(kind);

      for (size_t i = 0; i < workload.size(); ++i) {
        ASSERT_TRUE(single.Run(workload[i], outs[i]).ok())
            << workload[i].ToString();
      }

      auto enumerate = [&](const api::Session& session,
                           const std::string& out)
          -> Result<std::vector<PossibleWorld>> {
        switch (session.kind()) {
          case api::BackendKind::kWsd:
            return session.wsd()->EnumerateWorlds(4000000, {out});
          case api::BackendKind::kWsdt: {
            MAYWSD_ASSIGN_OR_RETURN(Wsd w, session.wsdt()->ToWsd());
            return w.EnumerateWorlds(4000000, {out});
          }
          case api::BackendKind::kUniform: {
            MAYWSD_ASSIGN_OR_RETURN(Wsdt w, ImportUniform(*session.uniform()));
            MAYWSD_ASSIGN_OR_RETURN(Wsd w2, w.ToWsd());
            return w2.EnumerateWorlds(4000000, {out});
          }
        }
        return Status::Internal("unknown kind");
      };
      for (const std::string& out : outs) {
        auto batched = enumerate(batch, out);
        auto plain = enumerate(single, out);
        ASSERT_TRUE(batched.ok()) << batched.status();
        ASSERT_TRUE(plain.ok()) << plain.status();
        EXPECT_TRUE(WorldSetsEquivalent(*batched, *plain))
            << "RunAll vs Run disagree on " << out << " for "
            << base.ToString() << " over " << api::BackendKindName(kind);
      }
      // No scratch relation may survive the batch lifecycle.
      for (const std::string& name : batch.RelationNames()) {
        EXPECT_NE(name.rfind("__eng_tmp", 0), 0u)
            << "leaked scratch relation " << name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunAllBatchProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace maywsd::core
