// Direct coverage for the rel::Optimize (name, schema) catalog overload:
// the form the world-set engine backends drive, where only schemas exist
// (backend relations are not rel::Relations). The overload must apply the
// same Section 5 rewrites as the Database-driven one and agree with it
// plan for plan.

#include <gtest/gtest.h>

#include "rel/eval.h"
#include "rel/optimizer.h"
#include "tests/test_util.h"

namespace maywsd::rel {
namespace {

using maywsd::testutil::I;

std::vector<std::pair<std::string, Schema>> Catalog() {
  return {{"R", Schema::FromNames({"A", "B"})},
          {"S", Schema::FromNames({"C", "D"})}};
}

TEST(OptimizerCatalogTest, FusesSelectionOverProductIntoJoin) {
  // σ_{A=C}(R × S) must become a join, exactly like the Database overload.
  Plan plan = Plan::Select(Predicate::CmpAttr("A", CmpOp::kEq, "C"),
                           Plan::Product(Plan::Scan("R"), Plan::Scan("S")));
  auto opt = Optimize(plan, Catalog());
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_EQ(opt->kind(), Plan::Kind::kJoin) << opt->ToString();
}

TEST(OptimizerCatalogTest, MergesStackedSelections) {
  Plan plan = Plan::Select(
      Predicate::Cmp("A", CmpOp::kEq, I(1)),
      Plan::Select(Predicate::Cmp("B", CmpOp::kLt, I(2)), Plan::Scan("R")));
  auto opt = Optimize(plan, Catalog());
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_EQ(opt->kind(), Plan::Kind::kSelect) << opt->ToString();
  EXPECT_EQ(opt->child().kind(), Plan::Kind::kScan) << opt->ToString();
}

TEST(OptimizerCatalogTest, AgreesWithDatabaseOverloadOnRandomPlans) {
  // Same rewrites from a bare catalog as from a Database holding instances
  // with those schemas, and the rewritten plan evaluates identically.
  Rng rng(4242);
  std::vector<testutil::RelSpec> specs = {{"R", {"A", "B"}, 3, 3},
                                          {"S", {"C", "D"}, 3, 3}};
  for (int round = 0; round < 20; ++round) {
    auto worlds = testutil::RandomWorlds(rng, specs, 1);
    const Database& db = worlds[0].db;
    std::vector<std::pair<std::string, Schema>> catalog;
    for (const std::string& name : db.Names()) {
      catalog.emplace_back(name, db.GetRelation(name).value()->schema());
    }

    Plan plan = Plan::Select(
        Predicate::Cmp("A", CmpOp::kEq,
                       I(static_cast<int64_t>(rng.Uniform(3)))),
        rng.Bernoulli(0.5)
            ? Plan::Product(Plan::Scan("R"), Plan::Scan("S"))
            : Plan::Select(
                  Predicate::CmpAttr("A", CmpOp::kNe, "B"),
                  Plan::Scan("R")));

    auto from_catalog = Optimize(plan, catalog);
    auto from_db = Optimize(plan, db);
    ASSERT_TRUE(from_catalog.ok()) << from_catalog.status();
    ASSERT_TRUE(from_db.ok()) << from_db.status();
    EXPECT_EQ(from_catalog->ToString(), from_db->ToString());

    auto plain = Evaluate(plan, db);
    auto optimized = Evaluate(*from_catalog, db);
    ASSERT_TRUE(plain.ok()) << plan.ToString();
    ASSERT_TRUE(optimized.ok()) << from_catalog->ToString();
    EXPECT_TRUE(plain->EqualsAsSet(*optimized))
        << "plan: " << plan.ToString()
        << "\nopt: " << from_catalog->ToString();
  }
}

TEST(OptimizerCatalogTest, UnknownScanLeavesPlanUntouched) {
  // The optimizer is schema-conservative: a scan the catalog does not know
  // blocks attribute-scoping rewrites but is not an error (the engine
  // reports NotFound at evaluation time instead).
  Plan plan = Plan::Select(Predicate::Cmp("A", CmpOp::kEq, I(1)),
                           Plan::Scan("NOPE"));
  auto opt = Optimize(plan, Catalog());
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_EQ(opt->ToString(), plan.ToString());
}

}  // namespace
}  // namespace maywsd::rel
