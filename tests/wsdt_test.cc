#include "core/wsdt.h"

#include <gtest/gtest.h>

#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::Q;
using testutil::S;

/// The WSDT of Figure 5: template with '?' for t0.S, t0.M, t1.S, t1.M and
/// the probabilistic components of Figure 4.
Wsdt Figure5() {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"S", "N", "M"}), "R");
  tmpl.AppendRow({Q(), S("Smith"), Q()});
  tmpl.AppendRow({Q(), S("Brown"), Q()});
  EXPECT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c1({FieldKey("R", 0, "S"), FieldKey("R", 1, "S")});
  c1.AddWorld({I(185), I(186)}, 0.2);
  c1.AddWorld({I(785), I(185)}, 0.4);
  c1.AddWorld({I(785), I(186)}, 0.4);
  EXPECT_TRUE(wsdt.AddComponent(std::move(c1)).ok());
  Component c2({FieldKey("R", 0, "M")});
  c2.AddWorld({I(1)}, 0.7);
  c2.AddWorld({I(2)}, 0.3);
  EXPECT_TRUE(wsdt.AddComponent(std::move(c2)).ok());
  Component c3({FieldKey("R", 1, "M")});
  for (int i = 1; i <= 4; ++i) c3.AddWorld({I(i)}, 0.25);
  EXPECT_TRUE(wsdt.AddComponent(std::move(c3)).ok());
  return wsdt;
}

TEST(WsdtTest, Figure5ValidatesAndCounts) {
  Wsdt wsdt = Figure5();
  EXPECT_TRUE(wsdt.Validate().ok());
  WsdtStats stats = wsdt.ComputeStats();
  EXPECT_EQ(stats.num_components, 3u);
  EXPECT_EQ(stats.num_components_multi, 1u);
  EXPECT_EQ(stats.template_rows, 2u);
  // |C| = (2 fields × 3 worlds) + 2 + 4 = 12 value entries.
  EXPECT_EQ(stats.c_size, 12u);
  auto hist = wsdt.ComponentSizeHistogram();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(WsdtTest, ValidateCatchesUncoveredPlaceholder) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A"}), "R");
  tmpl.AppendRow({Q()});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  EXPECT_EQ(wsdt.Validate().code(), StatusCode::kInternal);
}

TEST(WsdtTest, ValidateCatchesDanglingComponent) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A"}), "R");
  tmpl.AppendRow({I(1)});  // certain cell, yet a component points at it
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c({FieldKey("R", 0, "A")});
  c.AddWorld({I(1)}, 1.0);
  ASSERT_TRUE(wsdt.AddComponent(std::move(c)).ok());
  EXPECT_EQ(wsdt.Validate().code(), StatusCode::kInternal);
}

TEST(WsdtTest, ToWsdRoundTripPreservesWorlds) {
  Wsdt wsdt = Figure5();
  auto wsd = wsdt.ToWsd();
  ASSERT_TRUE(wsd.ok());
  ASSERT_TRUE(wsd->Validate().ok());
  auto worlds = CollapseWorlds(wsd->EnumerateWorlds(1000).value());
  EXPECT_EQ(worlds.size(), 24u);  // the cleaned census example
  // Back to a WSDT: certain fields return to the template.
  auto back = Wsdt::FromWsd(*wsd);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->Validate().ok());
  auto worlds2 =
      CollapseWorlds(back->ToWsd().value().EnumerateWorlds(1000).value());
  EXPECT_TRUE(WorldSetsEquivalent(worlds, worlds2));
  WsdtStats stats = back->ComputeStats();
  EXPECT_EQ(stats.num_components, 3u);
  EXPECT_EQ(stats.template_rows, 2u);
}

TEST(WsdtTest, FromWsdPullsCertainFieldsIntoTemplate) {
  Rng rng(11);
  for (int iter = 0; iter < 15; ++iter) {
    Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B"}, 2, 3}}, 3);
    auto before = wsd.EnumerateWorlds(100000).value();
    auto wsdt = Wsdt::FromWsd(wsd);
    ASSERT_TRUE(wsdt.ok());
    ASSERT_TRUE(wsdt->Validate().ok());
    auto after = wsdt->ToWsd().value().EnumerateWorlds(100000).value();
    EXPECT_TRUE(WorldSetsEquivalent(before, after)) << "iter " << iter;
  }
}

TEST(WsdtTest, FromWsdDropsAlwaysInvalidSlots) {
  Wsd wsd;
  ASSERT_TRUE(wsd.AddRelation("R", rel::Schema::FromNames({"A"}), 2).ok());
  Component c0({FieldKey("R", 0, "A")});
  c0.AddWorld({I(1)}, 1.0);
  ASSERT_TRUE(wsd.AddComponent(std::move(c0)).ok());
  Component c1({FieldKey("R", 1, "A")});
  c1.AddWorld({testutil::Bot()}, 1.0);  // invalid in all worlds
  ASSERT_TRUE(wsd.AddComponent(std::move(c1)).ok());
  auto wsdt = Wsdt::FromWsd(wsd);
  ASSERT_TRUE(wsdt.ok());
  EXPECT_EQ(wsdt->Template("R").value()->NumRows(), 1u);
}

TEST(WsdtTest, ConditionalPresenceSurvivesRoundTrip) {
  // A placeholder with ⊥ in some local worlds: tuple exists in half the
  // worlds. FromWsd must keep it as a placeholder.
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A", "B"}), 1).ok());
  Component c({FieldKey("R", 0, "A"), FieldKey("R", 0, "B")});
  c.AddWorld({I(1), I(2)}, 0.5);
  c.AddWorld({testutil::Bot(), testutil::Bot()}, 0.5);
  ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  auto wsdt = Wsdt::FromWsd(wsd);
  ASSERT_TRUE(wsdt.ok());
  EXPECT_EQ(wsdt->Template("R").value()->NumRows(), 1u);
  EXPECT_TRUE(wsdt->Template("R").value()->row(0)[0].is_question());
  auto worlds =
      CollapseWorlds(wsdt->ToWsd().value().EnumerateWorlds(100).value());
  ASSERT_EQ(worlds.size(), 2u);
}

TEST(WsdtTest, ComposeInPlaceUpdatesIndex) {
  Wsdt wsdt = Figure5();
  FieldLoc a = wsdt.Locate(FieldKey("R", 0, "S")).value();
  FieldLoc b = wsdt.Locate(FieldKey("R", 0, "M")).value();
  ASSERT_NE(a.comp, b.comp);
  auto before =
      CollapseWorlds(wsdt.ToWsd().value().EnumerateWorlds(1000).value());
  ASSERT_TRUE(wsdt.ComposeInPlace(a.comp, b.comp).ok());
  ASSERT_TRUE(wsdt.Validate().ok());
  auto after =
      CollapseWorlds(wsdt.ToWsd().value().EnumerateWorlds(1000).value());
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
  EXPECT_EQ(wsdt.ComputeStats().num_components, 2u);
}

TEST(WsdtTest, DropRelationRemovesComponents) {
  Wsdt wsdt = Figure5();
  ASSERT_TRUE(wsdt.DropRelation("R").ok());
  EXPECT_FALSE(wsdt.HasRelation("R"));
  EXPECT_EQ(wsdt.ComputeStats().num_components, 0u);
}

}  // namespace
}  // namespace maywsd::core
