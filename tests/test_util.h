// Shared helpers for the MayWSD test suite: tiny-world-set generators and
// the oracle-equivalence assertion used by the randomized property tests.

#ifndef MAYWSD_TESTS_TEST_UTIL_H_
#define MAYWSD_TESTS_TEST_UTIL_H_

#include <string>
#include <utility>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "core/normalize.h"
#include "core/uniform.h"
#include "core/urel.h"
#include "core/wsd.h"
#include "core/wsdt.h"
#include "core/worldset.h"
#include "rel/relation.h"

namespace maywsd::testutil {

inline rel::Value I(int64_t v) { return rel::Value::Int(v); }
inline rel::Value S(const char* s) { return rel::Value::String(s); }
inline rel::Value Bot() { return rel::Value::Bottom(); }
inline rel::Value Q() { return rel::Value::Question(); }

/// An Rng that remembers the seed it was built from, so oracle failures
/// are replayable: construct one per test body from an explicit seed and
/// announce it with MAYWSD_SEED_TRACE — every assertion failure in scope
/// then names the seed to rerun.
class SeededRng : public Rng {
 public:
  explicit SeededRng(uint64_t seed) : Rng(seed), seed_(seed) {}
  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

/// Prefixes every assertion failure in the current scope with the
/// generator seed (gtest SCOPED_TRACE).
#define MAYWSD_SEED_TRACE(seeded_rng)                                     \
  SCOPED_TRACE(::testing::Message()                                       \
               << "replay with world-set generator seed "                 \
               << (seeded_rng).seed())

/// Spec of one relation for the random world-set generator.
struct RelSpec {
  std::string name;
  std::vector<std::string> attrs;
  size_t max_rows = 2;   ///< rows per world drawn in [0, max_rows]
  int64_t domain = 3;    ///< values drawn in [0, domain)
};

/// Draws `num_worlds` random worlds over the given relations with random
/// normalized probabilities. Deterministic in `rng`.
inline std::vector<core::PossibleWorld> RandomWorlds(
    Rng& rng, const std::vector<RelSpec>& specs, size_t num_worlds) {
  std::vector<core::PossibleWorld> worlds;
  double total = 0;
  for (size_t w = 0; w < num_worlds; ++w) {
    core::PossibleWorld world;
    world.prob = 1.0 + static_cast<double>(rng.Uniform(8));
    total += world.prob;
    for (const RelSpec& spec : specs) {
      rel::Relation r(rel::Schema::FromNames(spec.attrs), spec.name);
      size_t rows = rng.Uniform(spec.max_rows + 1);
      std::vector<rel::Value> row(spec.attrs.size());
      for (size_t i = 0; i < rows; ++i) {
        for (size_t a = 0; a < spec.attrs.size(); ++a) {
          row[a] = rel::Value::Int(static_cast<int64_t>(
              rng.Uniform(static_cast<uint64_t>(spec.domain))));
        }
        r.AppendRow(row);
      }
      r.SortDedup();
      world.db.PutRelation(std::move(r));
    }
    worlds.push_back(std::move(world));
  }
  for (core::PossibleWorld& w : worlds) w.prob /= total;
  return worlds;
}

/// Builds a WSD from random worlds and (optionally) decomposes it so the
/// tests exercise genuinely multi-component decompositions.
inline core::Wsd RandomWsd(Rng& rng, const std::vector<RelSpec>& specs,
                           size_t num_worlds, bool decompose = true) {
  std::vector<core::PossibleWorld> worlds =
      RandomWorlds(rng, specs, num_worlds);
  auto wsd_or = core::WsdFromWorlds(worlds);
  core::Wsd wsd = std::move(wsd_or).value();
  if (decompose) {
    Status st = core::NormalizeWsd(wsd);
    (void)st;
  }
  return wsd;
}

// -- Backend enrollment ------------------------------------------------------
//
// The cross-backend equivalence oracles iterate this list instead of a
// hardcoded trio: adding a backend here enrolls it in every oracle
// (random_plan_test, update_test, parallel_session_test) at once.

/// Every Session backend, in a stable order.
inline std::vector<api::BackendKind> AllBackendKinds() {
  return {api::BackendKind::kWsd, api::BackendKind::kWsdt,
          api::BackendKind::kUniform, api::BackendKind::kUrel};
}

/// Opens a Session of the requested backend kind over (a copy of) `wsd`.
inline Result<api::Session> OpenSessionOver(api::BackendKind kind,
                                            const core::Wsd& wsd,
                                            api::SessionOptions options = {}) {
  if (kind == api::BackendKind::kWsd) {
    return api::Session::Open(core::Wsd(wsd), options);
  }
  MAYWSD_ASSIGN_OR_RETURN(core::Wsdt wsdt, core::Wsdt::FromWsd(wsd));
  return api::Session::Open(kind, wsdt, options);
}

/// Enumerates the session's world set (restricted to `rels` when non-empty)
/// regardless of the backing representation, for oracle comparisons.
inline Result<std::vector<core::PossibleWorld>> SessionWorlds(
    const api::Session& session, size_t cap,
    const std::vector<std::string>& rels = {}) {
  switch (session.kind()) {
    case api::BackendKind::kWsd:
      return session.wsd()->EnumerateWorlds(cap, rels);
    case api::BackendKind::kWsdt: {
      MAYWSD_ASSIGN_OR_RETURN(core::Wsd w, session.wsdt()->ToWsd());
      return w.EnumerateWorlds(cap, rels);
    }
    case api::BackendKind::kUniform: {
      MAYWSD_ASSIGN_OR_RETURN(core::Wsdt wsdt,
                              core::ImportUniform(*session.uniform()));
      MAYWSD_ASSIGN_OR_RETURN(core::Wsd w, wsdt.ToWsd());
      return w.EnumerateWorlds(cap, rels);
    }
    case api::BackendKind::kUrel: {
      MAYWSD_ASSIGN_OR_RETURN(core::Wsdt wsdt,
                              core::ImportUrel(*session.urel()));
      MAYWSD_ASSIGN_OR_RETURN(core::Wsd w, wsdt.ToWsd());
      return w.EnumerateWorlds(cap, rels);
    }
  }
  return Status::Internal("unknown backend kind");
}

/// Representation-specific integrity check of the session's store.
inline Status ValidateSession(const api::Session& session) {
  switch (session.kind()) {
    case api::BackendKind::kWsd:
      return session.wsd()->Validate();
    case api::BackendKind::kWsdt:
      return session.wsdt()->Validate();
    case api::BackendKind::kUniform:
      return core::ValidateUniform(*session.uniform());
    case api::BackendKind::kUrel:
      return core::ValidateUrel(*session.urel());
  }
  return Status::Internal("unknown backend kind");
}

}  // namespace maywsd::testutil

#endif  // MAYWSD_TESTS_TEST_UTIL_H_
