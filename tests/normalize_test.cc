#include "core/normalize.h"

#include <gtest/gtest.h>

#include "core/wsd_algebra.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;

Component MakeComponent(std::vector<FieldKey> fields,
                        std::vector<std::vector<int64_t>> rows,
                        std::vector<double> probs = {}) {
  Component c(std::move(fields));
  for (size_t i = 0; i < rows.size(); ++i) {
    std::vector<rel::Value> vals;
    for (int64_t v : rows[i]) vals.push_back(I(v));
    c.AddWorld(vals, probs.empty() ? 1.0 / rows.size() : probs[i]);
  }
  return c;
}

TEST(FactorTest, FullyIndependentSplitsToSingletons) {
  // {0,1} × {0,1}: 4 rows, independent.
  Component c = MakeComponent(
      {FieldKey("R", 0, "A"), FieldKey("R", 0, "B")},
      {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  auto parts = FactorComponent(c);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].NumFields(), 1u);
  EXPECT_EQ(parts[1].NumFields(), 1u);
  EXPECT_EQ(parts[0].NumWorlds(), 2u);
}

TEST(FactorTest, DiagonalIsPrime) {
  // {(0,0),(1,1)} cannot factor.
  Component c = MakeComponent(
      {FieldKey("R", 0, "A"), FieldKey("R", 0, "B")}, {{0, 0}, {1, 1}});
  auto parts = FactorComponent(c);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].NumFields(), 2u);
}

TEST(FactorTest, XorParityIsPrime) {
  // Even-parity triples: all pairs of columns are independent but the
  // relation does not factor — the classical counterexample to pairwise
  // decomposition tests.
  Component c = MakeComponent({FieldKey("R", 0, "A"), FieldKey("R", 0, "B"),
                               FieldKey("R", 0, "C")},
                              {{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}});
  auto parts = FactorComponent(c);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].NumFields(), 3u);
}

TEST(FactorTest, MixedPrimeBlocks) {
  // (diagonal AB) × (free C): expect blocks {A,B} and {C}.
  Component c = MakeComponent(
      {FieldKey("R", 0, "A"), FieldKey("R", 0, "B"), FieldKey("R", 0, "C")},
      {{0, 0, 0}, {0, 0, 1}, {1, 1, 0}, {1, 1, 1}});
  auto parts = FactorComponent(c);
  ASSERT_EQ(parts.size(), 2u);
  size_t sizes = parts[0].NumFields() + parts[1].NumFields();
  EXPECT_EQ(sizes, 3u);
  EXPECT_EQ(std::max(parts[0].NumFields(), parts[1].NumFields()), 2u);
}

TEST(FactorTest, ProbabilisticCorrelationBlocksSplit) {
  // Value combinations factor as sets, but the probabilities are
  // correlated — the component must remain prime.
  Component c = MakeComponent(
      {FieldKey("R", 0, "A"), FieldKey("R", 0, "B")},
      {{0, 0}, {0, 1}, {1, 0}, {1, 1}}, {0.4, 0.1, 0.1, 0.4});
  auto parts = FactorComponent(c);
  ASSERT_EQ(parts.size(), 1u);
}

TEST(FactorTest, ProbabilisticIndependenceSplits) {
  // p(A)·p(B) with p(A=0)=0.3, p(B=0)=0.6 factors exactly.
  Component c = MakeComponent(
      {FieldKey("R", 0, "A"), FieldKey("R", 0, "B")},
      {{0, 0}, {0, 1}, {1, 0}, {1, 1}},
      {0.18, 0.12, 0.42, 0.28});
  auto parts = FactorComponent(c);
  ASSERT_EQ(parts.size(), 2u);
  // Marginals are recovered.
  for (const Component& p : parts) {
    EXPECT_NEAR(p.ProbSum(), 1.0, 1e-9);
  }
}

TEST(FactorTest, FactorizationPreservesDistribution) {
  // Random products of independent blocks re-factor to an equivalent WSD.
  Rng rng(42);
  for (int iter = 0; iter < 30; ++iter) {
    Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B"}, 2, 3}}, 3,
                                  /*decompose=*/false);
    auto before = wsd.EnumerateWorlds(10000).value();
    ASSERT_TRUE(DecomposeComponents(wsd).ok());
    ASSERT_TRUE(wsd.Validate().ok());
    auto after = wsd.EnumerateWorlds(10000).value();
    EXPECT_TRUE(WorldSetsEquivalent(before, after)) << "iter " << iter;
  }
}

TEST(FactorTest, MaximalityAgainstBruteForce) {
  // For random small components, no factor returned by FactorComponent can
  // be split further by any bipartition.
  Rng rng(7);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<FieldKey> fields{FieldKey("R", 0, "A"), FieldKey("R", 0, "B"),
                                 FieldKey("R", 0, "C")};
    Component c(fields);
    size_t rows = 1 + rng.Uniform(5);
    for (size_t i = 0; i < rows; ++i) {
      c.AddWorld({I(static_cast<int64_t>(rng.Uniform(2))),
                  I(static_cast<int64_t>(rng.Uniform(2))),
                  I(static_cast<int64_t>(rng.Uniform(2)))},
                 1.0);
    }
    // Uniformize probabilities.
    ASSERT_TRUE(c.NormalizeProbs().ok());
    auto parts = FactorComponent(c);
    size_t total_fields = 0;
    for (const Component& p : parts) {
      total_fields += p.NumFields();
      // A prime factor of size ≥ 2 admits no further factorization.
      if (p.NumFields() >= 2) {
        auto sub = FactorComponent(p);
        EXPECT_EQ(sub.size(), 1u) << "non-maximal factor at iter " << iter;
      }
    }
    EXPECT_EQ(total_fields, 3u);
  }
}

TEST(NormalizeTest, CompressMergesDuplicateRows) {
  Component c = MakeComponent({FieldKey("R", 0, "A")}, {{1}, {1}, {2}},
                              {0.25, 0.25, 0.5});
  c.Compress();
  EXPECT_EQ(c.NumWorlds(), 2u);
  EXPECT_NEAR(c.ProbSum(), 1.0, 1e-9);
}

TEST(NormalizeTest, RemoveInvalidTuplesFigure21) {
  // After σ_{C=7} on Figure 10, tuple t1 of P is ⊥ in all worlds
  // (Example 12): remove_invalid_tuples drops it.
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("P", rel::Schema::FromNames({"A", "B", "C"}), 2).ok());
  {
    Component c({FieldKey("P", 0, "A")});
    c.AddWorld({I(1)}, 0.5);
    c.AddWorld({I(2)}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("P", 0, "B"), FieldKey("P", 0, "C"),
                 FieldKey("P", 1, "B")});
    c.AddWorld({testutil::Bot(), testutil::Bot(), I(3)}, 0.5);
    c.AddWorld({I(2), I(7), I(4)}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("P", 1, "A")});
    c.AddWorld({I(4)}, 0.5);
    c.AddWorld({I(5)}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("P", 1, "C")});
    c.AddWorld({testutil::Bot()}, 1.0);  // t1.C is ⊥ everywhere: invalid
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  auto before = wsd.EnumerateWorlds(1000).value();
  ASSERT_TRUE(RemoveInvalidTuples(wsd).ok());
  ASSERT_TRUE(wsd.Validate().ok());
  const WsdRelation* p = wsd.FindRelation("P").value();
  EXPECT_FALSE(wsd.SlotPresent(*p, 1));  // t1 removed
  EXPECT_TRUE(wsd.SlotPresent(*p, 0));
  auto after = wsd.EnumerateWorlds(1000).value();
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
}

TEST(NormalizeTest, DropZeroProbabilityWorlds) {
  Wsd wsd;
  ASSERT_TRUE(wsd.AddRelation("R", rel::Schema::FromNames({"A"}), 1).ok());
  Component c({FieldKey("R", 0, "A")});
  c.AddWorld({I(1)}, 1.0);
  c.AddWorld({I(2)}, 0.0);
  ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  ASSERT_TRUE(DropZeroProbabilityWorlds(wsd).ok());
  EXPECT_EQ(wsd.component(wsd.LiveComponents()[0]).NumWorlds(), 1u);
}

TEST(NormalizeTest, FullPipelinePreservesRep) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    Wsd wsd = testutil::RandomWsd(
        rng, {{"R", {"A", "B"}, 2, 2}, {"S", {"C"}, 2, 2}}, 4,
        /*decompose=*/false);
    auto before = wsd.EnumerateWorlds(10000).value();
    ASSERT_TRUE(NormalizeWsd(wsd).ok());
    ASSERT_TRUE(wsd.Validate().ok());
    auto after = wsd.EnumerateWorlds(10000).value();
    EXPECT_TRUE(WorldSetsEquivalent(before, after)) << "iter " << iter;
  }
}

TEST(NormalizeTest, NormalizationShrinksQueriedWsd) {
  // Example 12: normalization after a selection is a strict win.
  Rng rng(3);
  Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B"}, 2, 2}}, 3);
  ASSERT_TRUE(WsdSelectConst(wsd, "R", "P", "A", rel::CmpOp::kEq, I(0)).ok());
  auto before = wsd.EnumerateWorlds(10000, {"P"}).value();
  size_t cells_before = 0;
  for (size_t i : wsd.LiveComponents()) {
    cells_before +=
        wsd.component(i).NumFields() * wsd.component(i).NumWorlds();
  }
  ASSERT_TRUE(NormalizeWsd(wsd).ok());
  size_t cells_after = 0;
  for (size_t i : wsd.LiveComponents()) {
    cells_after +=
        wsd.component(i).NumFields() * wsd.component(i).NumWorlds();
  }
  EXPECT_LE(cells_after, cells_before);
  auto after = wsd.EnumerateWorlds(10000, {"P"}).value();
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
}

}  // namespace
}  // namespace maywsd::core
