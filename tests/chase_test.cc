#include "core/chase.h"

#include <gtest/gtest.h>

#include <map>

#include "core/normalize.h"
#include "core/orset.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::S;

/// The introduction's or-set database (32 worlds).
Wsd IntroWsd() {
  OrSetRelation r(rel::Schema::FromNames({"S", "N", "M"}), "R");
  EXPECT_TRUE(r.AppendRow({{I(185), I(785)}, {S("Smith")}, {I(1), I(2)}})
                  .ok());
  EXPECT_TRUE(
      r.AppendRow({{I(185), I(186)}, {S("Brown")}, {I(1), I(2), I(3), I(4)}})
          .ok());
  return r.ToWsd().value();
}

/// Figure 4's probabilistic WSD (see confidence_test.cc for the layout).
Wsd Figure4() {
  Wsd wsd;
  EXPECT_TRUE(wsd.AddRelation("R", rel::Schema::FromNames({"S", "N", "M"}), 2)
                  .ok());
  Component c1({FieldKey("R", 0, "S"), FieldKey("R", 1, "S")});
  c1.AddWorld({I(185), I(186)}, 0.2);
  c1.AddWorld({I(785), I(185)}, 0.4);
  c1.AddWorld({I(785), I(186)}, 0.4);
  EXPECT_TRUE(wsd.AddComponent(std::move(c1)).ok());
  Component c2({FieldKey("R", 0, "N")});
  c2.AddWorld({S("Smith")}, 1.0);
  EXPECT_TRUE(wsd.AddComponent(std::move(c2)).ok());
  Component c3({FieldKey("R", 0, "M")});
  c3.AddWorld({I(1)}, 0.7);
  c3.AddWorld({I(2)}, 0.3);
  EXPECT_TRUE(wsd.AddComponent(std::move(c3)).ok());
  Component c4({FieldKey("R", 1, "N")});
  c4.AddWorld({S("Brown")}, 1.0);
  EXPECT_TRUE(wsd.AddComponent(std::move(c4)).ok());
  Component c5({FieldKey("R", 1, "M")});
  for (int i = 1; i <= 4; ++i) c5.AddWorld({I(i)}, 0.25);
  EXPECT_TRUE(wsd.AddComponent(std::move(c5)).ok());
  return wsd;
}

TEST(ChaseTest, IntroKeyConstraintLeaves24Worlds) {
  // "Social security numbers are unique" = FD S→N (names differ, so equal
  // SSNs are excluded): 8 of the 32 worlds die (Section 1).
  Wsd wsd = IntroWsd();
  Fd fd{"R", {"S"}, "N"};
  ASSERT_TRUE(ChaseFd(wsd, fd).ok());
  ASSERT_TRUE(wsd.Validate().ok());
  auto worlds = CollapseWorlds(wsd.EnumerateWorlds(1000).value());
  EXPECT_EQ(worlds.size(), 24u);
  // The S-pair component now matches Figure 3: {(185,186),(785,185),
  // (785,186)}.
  FieldLoc loc = wsd.Locate(FieldKey("R", 0, "S")).value();
  const Component& comp = wsd.component(loc.comp);
  EXPECT_EQ(comp.NumWorlds(), 3u);
}

TEST(ChaseTest, Figure22EgdChase) {
  // Chasing S=785 ⇒ M=1 on Figure 4 composes {t0.S,t1.S} with {t0.M} and
  // renormalizes to the probabilities printed in Figure 22.
  Wsd wsd = Figure4();
  Egd egd;
  egd.relation = "R";
  egd.premises = {{"S", rel::CmpOp::kEq, I(785)}};
  egd.conclusion = {"M", rel::CmpOp::kEq, I(1)};
  ASSERT_TRUE(ChaseEgd(wsd, egd).ok());
  ASSERT_TRUE(wsd.Validate().ok());
  // Find the composed component holding t0.S, t1.S and t0.M.
  FieldLoc loc = wsd.Locate(FieldKey("R", 0, "S")).value();
  const Component& comp = wsd.component(loc.comp);
  ASSERT_EQ(comp.NumFields(), 3u);
  ASSERT_EQ(comp.NumWorlds(), 4u);
  int cs0 = comp.FindField(FieldKey("R", 0, "S"));
  int cs1 = comp.FindField(FieldKey("R", 1, "S"));
  int cm0 = comp.FindField(FieldKey("R", 0, "M"));
  ASSERT_GE(cs0, 0);
  ASSERT_GE(cs1, 0);
  ASSERT_GE(cm0, 0);
  std::map<std::string, double> got;
  for (size_t w = 0; w < comp.NumWorlds(); ++w) {
    std::string key = comp.at(w, cs0).ToString() + "," +
                      comp.at(w, cs1).ToString() + "," +
                      comp.at(w, cm0).ToString();
    got[key] = comp.prob(w);
  }
  // Figure 22 values: 0.1842, 0.0790, 0.3684, 0.3684 (renormalized /0.76).
  EXPECT_NEAR(got["185,186,1"], 0.2 * 0.7 / 0.76, 1e-9);
  EXPECT_NEAR(got["185,186,2"], 0.2 * 0.3 / 0.76, 1e-9);
  EXPECT_NEAR(got["785,185,1"], 0.4 * 0.7 / 0.76, 1e-9);
  EXPECT_NEAR(got["785,186,1"], 0.4 * 0.7 / 0.76, 1e-9);
}

TEST(ChaseTest, Figure23OrderIndependentSemantics) {
  // Chasing {d1 = B→C, d2 = (A=1 ⇒ B≠2)} in either order yields the same
  // world-set; d2-first avoids all composition (Figure 23(e)).
  auto make = []() {
    Wsd wsd;
    EXPECT_TRUE(
        wsd.AddRelation("R", rel::Schema::FromNames({"A", "B", "C"}), 2)
            .ok());
    auto add = [&](TupleId t, const char* attr,
                   std::vector<std::pair<int64_t, double>> vals) {
      Component c({FieldKey("R", t, attr)});
      for (auto [v, p] : vals) c.AddWorld({I(v)}, p);
      EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
    };
    add(0, "A", {{1, 1.0}});
    add(0, "B", {{1, 0.5}, {2, 0.5}});
    add(0, "C", {{5, 1.0}});
    add(1, "A", {{2, 1.0}});
    add(1, "B", {{2, 0.5}, {3, 0.5}});
    add(1, "C", {{5, 0.5}, {6, 0.5}});
    return wsd;
  };
  Fd d1{"R", {"B"}, "C"};
  Egd d2;
  d2.relation = "R";
  d2.premises = {{"A", rel::CmpOp::kEq, I(1)}};
  d2.conclusion = {"B", rel::CmpOp::kNe, I(2)};

  Wsd w12 = make();
  ASSERT_TRUE(Chase(w12, {d1, d2}).ok());
  Wsd w21 = make();
  ASSERT_TRUE(Chase(w21, {d2, d1}).ok());
  auto r12 = w12.EnumerateWorlds(10000).value();
  auto r21 = w21.EnumerateWorlds(10000).value();
  EXPECT_TRUE(WorldSetsEquivalent(r12, r21));
  // d2-first never composes: six single-field components remain.
  EXPECT_EQ(w21.NumLiveComponents(), 6u);
  // The oracle agrees.
  Wsd base = make();
  auto filtered = FilterWorldsByDependencies(
      base.EnumerateWorlds(10000).value(), {d1, d2});
  ASSERT_TRUE(filtered.ok());
  EXPECT_TRUE(WorldSetsEquivalent(*filtered, r12));
}

TEST(ChaseTest, InconsistentWorldSetReported) {
  // A certain tuple violating an EGD kills every world.
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A", "B"}), 1).ok());
  Component c({FieldKey("R", 0, "A"), FieldKey("R", 0, "B")});
  c.AddWorld({I(1), I(5)}, 1.0);
  ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  Egd egd;
  egd.relation = "R";
  egd.premises = {{"A", rel::CmpOp::kEq, I(1)}};
  egd.conclusion = {"B", rel::CmpOp::kEq, I(0)};
  EXPECT_EQ(ChaseEgd(wsd, egd).code(), StatusCode::kInconsistent);
}

TEST(ChaseTest, VacuousOnAbsentTuples) {
  // A tuple that is absent in some worlds cannot violate there: chasing
  // must keep the absent-tuple worlds alive.
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A", "B"}), 1).ok());
  Component c({FieldKey("R", 0, "A"), FieldKey("R", 0, "B")});
  c.AddWorld({I(1), I(5)}, 0.5);  // violates A=1 ⇒ B=0
  c.AddWorld({testutil::Bot(), testutil::Bot()}, 0.5);  // absent: vacuous
  ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  Egd egd;
  egd.relation = "R";
  egd.premises = {{"A", rel::CmpOp::kEq, I(1)}};
  egd.conclusion = {"B", rel::CmpOp::kEq, I(0)};
  ASSERT_TRUE(ChaseEgd(wsd, egd).ok());
  auto worlds = CollapseWorlds(wsd.EnumerateWorlds(100).value());
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_EQ(worlds[0].db.GetRelation("R").value()->NumRows(), 0u);
  EXPECT_NEAR(worlds[0].prob, 1.0, 1e-9);
}

TEST(ChaseTest, EgdSkipsWhenPremiseImpossible) {
  // The Section 8 refinement: no composition when the premise can never
  // hold — the components stay untouched.
  Wsd wsd = Figure4();
  size_t before = wsd.NumLiveComponents();
  Egd egd;
  egd.relation = "R";
  egd.premises = {{"S", rel::CmpOp::kEq, I(999)}};
  egd.conclusion = {"M", rel::CmpOp::kEq, I(1)};
  ASSERT_TRUE(ChaseEgd(wsd, egd).ok());
  EXPECT_EQ(wsd.NumLiveComponents(), before);
}

class ChaseProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChaseProperty, MatchesBruteForceFiltering) {
  Rng rng(GetParam());
  Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B", "C"}, 3, 2}}, 4);
  auto before = wsd.EnumerateWorlds(100000).value();

  std::vector<Dependency> deps;
  Egd egd;
  egd.relation = "R";
  egd.premises = {{"A", rel::CmpOp::kEq, I(0)}};
  egd.conclusion = {"B", rel::CmpOp::kNe, I(1)};
  deps.push_back(egd);
  deps.push_back(Fd{"R", {"A"}, "B"});

  auto expected = FilterWorldsByDependencies(before, deps);
  Status st = Chase(wsd, deps);
  if (!expected.ok()) {
    EXPECT_EQ(st.code(), StatusCode::kInconsistent) << "seed " << GetParam();
    return;
  }
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_TRUE(wsd.Validate().ok());
  auto after = wsd.EnumerateWorlds(100000).value();
  EXPECT_TRUE(WorldSetsEquivalent(*expected, after))
      << "seed " << GetParam();
}

TEST_P(ChaseProperty, TwoAttributeFdMatchesBruteForce) {
  Rng rng(GetParam() + 300);
  Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B", "C"}, 3, 2}}, 3);
  auto before = wsd.EnumerateWorlds(100000).value();
  std::vector<Dependency> deps{Fd{"R", {"A", "B"}, "C"}};
  auto expected = FilterWorldsByDependencies(before, deps);
  Status st = Chase(wsd, deps);
  if (!expected.ok()) {
    EXPECT_EQ(st.code(), StatusCode::kInconsistent);
    return;
  }
  ASSERT_TRUE(st.ok()) << st;
  auto after = wsd.EnumerateWorlds(100000).value();
  EXPECT_TRUE(WorldSetsEquivalent(*expected, after));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace maywsd::core
