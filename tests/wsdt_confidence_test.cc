#include "core/wsdt_confidence.h"

#include <gtest/gtest.h>

#include <map>

#include "census/dependencies.h"
#include "census/ipums.h"
#include "census/noise.h"
#include "census/queries.h"
#include "core/confidence.h"
#include "core/wsdt_algebra.h"
#include "core/wsdt_chase.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::Q;
using testutil::S;

/// Figure 5's WSDT (see wsdt_test.cc).
Wsdt Figure5() {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"S", "N", "M"}), "R");
  tmpl.AppendRow({Q(), S("Smith"), Q()});
  tmpl.AppendRow({Q(), S("Brown"), Q()});
  EXPECT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c1({FieldKey("R", 0, "S"), FieldKey("R", 1, "S")});
  c1.AddWorld({I(185), I(186)}, 0.2);
  c1.AddWorld({I(785), I(185)}, 0.4);
  c1.AddWorld({I(785), I(186)}, 0.4);
  EXPECT_TRUE(wsdt.AddComponent(std::move(c1)).ok());
  Component c2({FieldKey("R", 0, "M")});
  c2.AddWorld({I(1)}, 0.7);
  c2.AddWorld({I(2)}, 0.3);
  EXPECT_TRUE(wsdt.AddComponent(std::move(c2)).ok());
  Component c3({FieldKey("R", 1, "M")});
  for (int i = 1; i <= 4; ++i) c3.AddWorld({I(i)}, 0.25);
  EXPECT_TRUE(wsdt.AddComponent(std::move(c3)).ok());
  return wsdt;
}

TEST(WsdtConfidenceTest, Example11OnTheTemplatePath) {
  // π_S over Figure 5 then possibleᵖ: (185,0.6), (186,0.6), (785,0.8).
  Wsdt wsdt = Figure5();
  ASSERT_TRUE(WsdtProject(wsdt, "R", "QS", {"S"}).ok());
  auto result = WsdtPossibleTuplesWithConfidence(wsdt, "QS");
  ASSERT_TRUE(result.ok());
  std::map<int64_t, double> conf;
  for (size_t i = 0; i < result->NumRows(); ++i) {
    conf[result->row(i)[0].AsInt()] = result->row(i)[1].AsDouble();
  }
  ASSERT_EQ(conf.size(), 3u);
  EXPECT_NEAR(conf[185], 0.6, 1e-9);
  EXPECT_NEAR(conf[186], 0.6, 1e-9);
  EXPECT_NEAR(conf[785], 0.8, 1e-9);
}

TEST(WsdtConfidenceTest, CertainTupleShortCircuits) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A"}), "R");
  tmpl.AppendRow({I(5)});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  std::vector<rel::Value> probe{I(5)};
  EXPECT_NEAR(WsdtTupleConfidence(wsdt, "R", probe).value(), 1.0, 1e-12);
  std::vector<rel::Value> absent{I(6)};
  EXPECT_NEAR(WsdtTupleConfidence(wsdt, "R", absent).value(), 0.0, 1e-12);
}

class WsdtConfidenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(WsdtConfidenceProperty, MatchesWsdPath) {
  Rng rng(GetParam());
  Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B"}, 3, 2}}, 4);
  auto wsdt = Wsdt::FromWsd(wsd).value();
  // possible(R) agrees between the two paths.
  auto a = PossibleTuples(wsd, "R").value();
  auto b = WsdtPossibleTuples(wsdt, "R").value();
  EXPECT_TRUE(a.EqualsAsSet(b)) << "seed " << GetParam();
  // conf(t) agrees on every possible tuple.
  for (size_t i = 0; i < a.NumRows(); ++i) {
    auto ca = TupleConfidence(wsd, "R", a.row(i).span());
    auto cb = WsdtTupleConfidence(wsdt, "R", a.row(i).span());
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    EXPECT_NEAR(*ca, *cb, 1e-9)
        << "seed " << GetParam() << " tuple " << a.row(i).ToString();
  }
}

TEST_P(WsdtConfidenceProperty, MatchesWsdPathAfterQuery) {
  Rng rng(GetParam() + 100);
  Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B"}, 2, 2}}, 3);
  auto wsdt = Wsdt::FromWsd(wsd).value();
  rel::Plan q = rel::Plan::Project(
      {"A"}, rel::Plan::Select(
                 rel::Predicate::Cmp("B", rel::CmpOp::kGt, I(0)),
                 rel::Plan::Scan("R")));
  ASSERT_TRUE(WsdtEvaluate(wsdt, q, "OUT").ok());
  auto possible = WsdtPossibleTuplesWithConfidence(wsdt, "OUT").value();
  // Brute force on the expanded representation.
  Wsd expanded = wsdt.ToWsd().value();
  auto worlds = expanded.EnumerateWorlds(1000000).value();
  for (size_t i = 0; i < possible.NumRows(); ++i) {
    std::vector<rel::Value> t{possible.row(i)[0]};
    double brute = 0;
    for (const auto& w : worlds) {
      if (w.db.GetRelation("OUT").value()->ContainsRow(t)) brute += w.prob;
    }
    EXPECT_NEAR(possible.row(i)[1].AsDouble(), brute, 1e-9)
        << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WsdtConfidenceProperty,
                         ::testing::Range(0, 10));

TEST(WsdtConfidenceTest, CensusScalePossibleAnswers) {
  // The operators run directly at a scale where expanding to a Wsd (one
  // singleton component per certain field) would be prohibitive.
  census::CensusSchema schema = census::CensusSchema::Standard();
  rel::Relation base = census::GenerateCensus(schema, 20000, 5);
  auto wsdt = census::MakeNoisyWsdt(base, schema, 0.001, 6).value();
  ASSERT_TRUE(WsdtChase(wsdt, census::CensusDependencies("R")).ok());
  ASSERT_TRUE(WsdtEvaluate(wsdt, census::CensusQuery(6, "R"), "OUT").ok());
  auto possible = WsdtPossibleTuples(wsdt, "OUT");
  ASSERT_TRUE(possible.ok());
  EXPECT_GT(possible->NumRows(), 0u);
  // Every fully-certain answer row is possible (placeholder rows may
  // overlap certain ones, so |possible| can be below the row count).
  const rel::Relation* tmpl = wsdt.Template("OUT").value();
  for (size_t r = 0; r < tmpl->NumRows(); ++r) {
    rel::TupleRef row = tmpl->row(r);
    bool certain = true;
    for (size_t a = 0; a < row.arity(); ++a) {
      if (row[a].is_question()) certain = false;
    }
    if (certain) {
      ASSERT_TRUE(possible->ContainsRow(row.span())) << r;
    }
  }
  // Spot-check confidences of the first few possible answers.
  for (size_t i = 0; i < std::min<size_t>(possible->NumRows(), 20); ++i) {
    auto conf = WsdtTupleConfidence(wsdt, "OUT", possible->row(i).span());
    ASSERT_TRUE(conf.ok());
    EXPECT_GT(*conf, 0.0);
    EXPECT_LE(*conf, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace maywsd::core
