// End-to-end pipeline tests: generate census data, inject or-set noise,
// chase the Figure 25 dependencies, evaluate the Figure 29 queries, and
// check representation invariants — the full Section 9 workflow at test
// scale.

#include <gtest/gtest.h>

#include "census/dependencies.h"
#include "census/ipums.h"
#include "census/noise.h"
#include "census/queries.h"
#include "core/confidence.h"
#include "core/uniform.h"
#include "core/wsdt_algebra.h"
#include "core/wsdt_chase.h"
#include "core/worldset.h"
#include "rel/eval.h"
#include "rel/optimizer.h"
#include "tests/test_util.h"

namespace maywsd {
namespace {

using census::CensusDependencies;
using census::CensusQuery;
using census::CensusSchema;
using census::GenerateCensus;
using census::MakeNoisyWsdt;
using core::Wsdt;
using core::WsdtStats;

TEST(IntegrationTest, FullPipelineSmallScale) {
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 400, 2026);
  census::NoiseReport report;
  auto wsdt_or = MakeNoisyWsdt(base, schema, 0.005, 17, &report);
  ASSERT_TRUE(wsdt_or.ok());
  Wsdt wsdt = std::move(wsdt_or).value();
  EXPECT_GT(report.placeholders, 0u);

  // Clean.
  ASSERT_TRUE(core::WsdtChase(wsdt, CensusDependencies("R")).ok());
  ASSERT_TRUE(wsdt.Validate().ok());
  WsdtStats after_chase = wsdt.ComputeStats();
  EXPECT_EQ(after_chase.template_rows, base.NumRows());
  EXPECT_LE(after_chase.num_components, report.placeholders);

  // Query: all six of Figure 29.
  for (int i = 1; i <= 6; ++i) {
    std::string out = "Q" + std::to_string(i);
    Status st = core::WsdtEvaluate(wsdt, CensusQuery(i, "R"), out);
    ASSERT_TRUE(st.ok()) << "Q" << i << ": " << st;
    ASSERT_TRUE(wsdt.Validate().ok()) << "Q" << i;
  }
  WsdtStats final_stats = wsdt.ComputeStats();
  EXPECT_GT(final_stats.template_rows, after_chase.template_rows);
}

TEST(IntegrationTest, ZeroDensityQueriesMatchOneWorld) {
  // With no placeholders the WSDT path must return exactly the classical
  // result (the paper's 0% baseline).
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 1500, 5);
  rel::Database db;
  db.PutRelation(base);
  auto wsdt_or = MakeNoisyWsdt(base, schema, 0.0, 1);
  ASSERT_TRUE(wsdt_or.ok());
  Wsdt wsdt = std::move(wsdt_or).value();
  for (int i = 1; i <= 6; ++i) {
    std::string out = "Q" + std::to_string(i);
    ASSERT_TRUE(core::WsdtEvaluate(wsdt, CensusQuery(i, "R"), out).ok());
    auto expected = rel::Evaluate(CensusQuery(i, "R"), db).value();
    rel::Relation got = *wsdt.Template(out).value();
    got.SortDedup();
    EXPECT_TRUE(got.EqualsAsSet(expected)) << "Q" << i;
  }
}

TEST(IntegrationTest, NoisyQueryMatchesPerWorldOracle) {
  // Tiny noisy instance: the WSDT query results, expanded to worlds, equal
  // per-world evaluation (Theorem 1 across the whole pipeline).
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 30, 77);
  auto wsdt_or = MakeNoisyWsdt(base, schema, 0.004, 3);
  ASSERT_TRUE(wsdt_or.ok());
  Wsdt wsdt = std::move(wsdt_or).value();
  auto wsd = wsdt.ToWsd().value();
  auto worlds_or = wsd.EnumerateWorlds(100000);
  if (!worlds_or.ok()) GTEST_SKIP() << "too many worlds for the oracle";
  for (int i : {1, 2, 4, 6}) {
    auto expected =
        core::EvaluatePerWorld(*worlds_or, CensusQuery(i, "R"), "OUT");
    ASSERT_TRUE(expected.ok());
    Wsdt copy = wsdt;
    ASSERT_TRUE(core::WsdtEvaluate(copy, CensusQuery(i, "R"), "OUT").ok());
    auto actual =
        copy.ToWsd().value().EnumerateWorlds(1000000, {"OUT"}).value();
    EXPECT_TRUE(core::WorldSetsEquivalent(*expected, actual)) << "Q" << i;
  }
}

TEST(IntegrationTest, ChasePreservesOriginalWorld) {
  // The noise-free record satisfies all dependencies, so the original
  // world survives cleaning with positive probability.
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 25, 31);
  auto wsdt_or = MakeNoisyWsdt(base, schema, 0.02, 8);
  ASSERT_TRUE(wsdt_or.ok());
  Wsdt wsdt = std::move(wsdt_or).value();
  ASSERT_TRUE(core::WsdtChase(wsdt, CensusDependencies("R")).ok());
  // Every base tuple is still possible.
  auto wsd = wsdt.ToWsd().value();
  for (size_t r = 0; r < base.NumRows(); ++r) {
    auto conf = core::TupleConfidence(wsd, "R", base.row(r).span());
    ASSERT_TRUE(conf.ok());
    EXPECT_GT(*conf, 0.0) << "base tuple " << r << " lost";
  }
}

TEST(IntegrationTest, UniformEncodingOfCensusData) {
  // Export/import of a noisy census WSDT through the C/F/W encoding.
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 60, 13);
  auto wsdt = MakeNoisyWsdt(base, schema, 0.01, 21).value();
  auto db = core::ExportUniform(wsdt);
  ASSERT_TRUE(db.ok());
  auto back = core::ImportUniform(*db);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->Validate().ok());
  WsdtStats a = wsdt.ComputeStats();
  WsdtStats b = back->ComputeStats();
  EXPECT_EQ(a.num_components, b.num_components);
  EXPECT_EQ(a.c_size, b.c_size);
  EXPECT_EQ(a.template_rows, b.template_rows);
}

TEST(IntegrationTest, OptimizerPlansAgreeOnWsdtPath) {
  // Evaluating the optimized plan yields the same result relation.
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 500, 3);
  rel::Database db;
  db.PutRelation(base);
  for (int i = 1; i <= 6; ++i) {
    auto opt = rel::Optimize(CensusQuery(i, "R"), db);
    ASSERT_TRUE(opt.ok()) << "Q" << i;
    auto a = rel::Evaluate(CensusQuery(i, "R"), db).value();
    auto b = rel::Evaluate(*opt, db).value();
    EXPECT_TRUE(a.EqualsAsSet(b)) << "Q" << i;
  }
}

}  // namespace
}  // namespace maywsd
