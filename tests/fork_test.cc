// The fork/teardown concurrency layer: O(1) copy-on-write session pins
// (Session::Snapshot and Session::Fork) racing writers and dying on
// arbitrary threads, on all four backends.
//
// The load-bearing test is the stress oracle (the TSan CI job runs it
// repeatedly): reader threads pin, read and drop snapshots and forks at
// high rate while a writer applies guarded ApplyAll batches. Every
// observed (version, rows) pair must equal the serial replay's state at
// that version — otherwise a torn pin, a COW break racing a read, or a
// teardown release reordered past a mutate-in-place probe has corrupted
// the view. Store node/cell leak-equality after every teardown closes the
// other failure mode: a dead fork must not retain arena growth.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/session.h"
#include "core/component_store.h"
#include "tests/test_util.h"

namespace maywsd::api {
namespace {

using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::UpdateOp;
using testutil::I;

rel::Relation BaseRelation() {
  rel::Relation r(rel::Schema::FromNames({"A"}), "R");
  r.AppendRow({I(1)});
  r.AppendRow({I(2)});
  r.AppendRow({I(3)});
  return r;
}

/// A world condition that holds in every world (rows 1..3 never leave R).
Plan AlwaysGuard() {
  return Plan::Select(Predicate::Cmp("A", CmpOp::kLe, I(3)), Plan::Scan("R"));
}

/// A world condition that holds in no world.
Plan NeverGuard() {
  return Plan::Select(Predicate::Cmp("A", CmpOp::kLt, I(0)), Plan::Scan("R"));
}

/// The writer's batches: guarded inserts and deletes of sentinel rows.
/// Every third op is guarded by a never-true condition, so guard
/// evaluation runs without an effect; the rest alternate insert/delete so
/// distinct states have distinct possible(R).
std::vector<std::vector<UpdateOp>> GuardedScript(int batches,
                                                 int batch_size) {
  std::vector<std::vector<UpdateOp>> script;
  int k = 0;
  for (int b = 0; b < batches; ++b) {
    std::vector<UpdateOp> batch;
    for (int i = 0; i < batch_size; ++i, ++k) {
      if (k % 3 == 2) {
        rel::Relation rows(rel::Schema::FromNames({"A"}), "R");
        rows.AppendRow({I(900)});
        batch.push_back(UpdateOp::InsertTuples("R", std::move(rows))
                            .When(NeverGuard()));
      } else if (k % 2 == 0) {
        rel::Relation rows(rel::Schema::FromNames({"A"}), "R");
        rows.AppendRow({I(100 + k)});
        batch.push_back(UpdateOp::InsertTuples("R", std::move(rows))
                            .When(AlwaysGuard()));
      } else {
        batch.push_back(
            UpdateOp::DeleteWhere(
                "R", Predicate::Cmp("A", CmpOp::kEq, I(100 + k - 1)))
                .When(AlwaysGuard()));
      }
    }
    script.push_back(std::move(batch));
  }
  return script;
}

/// The stress oracle. ApplyAll holds the session's writer lock for the
/// whole batch, so the only versions a pin can ever observe are the
/// pre-batch and post-batch ones — the serial replay records exactly
/// those. Readers alternate Snapshot() and Fork() so both pin paths and
/// both teardown paths race the writer.
TEST(ForkStressOracle, PinReadDropRacesGuardedApplyAllBatches) {
  constexpr int kBatches = 8;
  constexpr int kBatchSize = 3;
  constexpr int kReaders = 4;
  const std::vector<std::vector<UpdateOp>> script =
      GuardedScript(kBatches, kBatchSize);

  for (BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    core::store::StoreStats family_before = core::store::GetStoreStats();
    {
      Session session = Session::Open(kind);
      ASSERT_TRUE(session.Register(BaseRelation()).ok());

      struct Observation {
        uint64_t version;
        rel::Relation rows;
      };
      std::vector<std::vector<Observation>> observed(kReaders);
      std::atomic<bool> writer_done{false};

      std::vector<std::thread> readers;
      readers.reserve(kReaders);
      for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&session, &observed, &writer_done, r] {
          size_t pin = 0;
          do {
            uint64_t version = 0;
            rel::Relation rows;
            if ((static_cast<size_t>(r) + pin++) % 2 == 0) {
              Snapshot snapshot = session.Snapshot();
              version = snapshot.RelationVersion("R");
              auto result = snapshot.PossibleTuples("R");
              ASSERT_TRUE(result.ok());
              rows = std::move(result.value());
            } else {
              Session fork = session.Fork();
              version = fork.RelationVersion("R");
              auto result = fork.PossibleTuples("R");
              ASSERT_TRUE(result.ok());
              rows = std::move(result.value());
            }
            observed[r].push_back({version, std::move(rows)});
          } while (!writer_done.load(std::memory_order_acquire));
        });
      }
      std::thread writer([&session, &script, &writer_done] {
        for (const std::vector<UpdateOp>& batch : script) {
          ASSERT_TRUE(session.ApplyAll(batch).ok());
        }
        writer_done.store(true, std::memory_order_release);
      });
      writer.join();
      for (std::thread& t : readers) t.join();

      // Serial replay, batch by batch: version → possible(R) at every
      // state a pin could have observed.
      std::unordered_map<uint64_t, rel::Relation> truth;
      {
        Session replay = Session::Open(kind);
        ASSERT_TRUE(replay.Register(BaseRelation()).ok());
        auto record = [&truth, &replay] {
          auto rows = replay.PossibleTuples("R");
          ASSERT_TRUE(rows.ok());
          truth.emplace(replay.RelationVersion("R"),
                        std::move(rows.value()));
        };
        record();
        for (const std::vector<UpdateOp>& batch : script) {
          ASSERT_TRUE(replay.ApplyAll(batch).ok());
          record();
        }
      }

      size_t total = 0;
      for (int r = 0; r < kReaders; ++r) {
        total += observed[r].size();
        for (const Observation& obs : observed[r]) {
          auto it = truth.find(obs.version);
          ASSERT_NE(it, truth.end())
              << "pinned version " << obs.version
              << ", which no serial state ever had";
          EXPECT_TRUE(obs.rows.EqualsAsSet(it->second))
              << "at version " << obs.version;
        }
      }
      EXPECT_GT(total, 0u);
      SessionStats stats = session.Stats();
      EXPECT_GE(stats.snapshots + stats.forks, total);
    }
    // The whole family (session, replay, every snapshot and fork) is dead:
    // the store must be back to the pre-family node/cell counts exactly.
    core::store::StoreStats family_after = core::store::GetStoreStats();
    EXPECT_EQ(family_after.live_nodes, family_before.live_nodes)
        << "dead session family leaked payload nodes";
    EXPECT_EQ(family_after.live_cells, family_before.live_cells)
        << "dead session family leaked value cells";
  }
}

/// Pin/read/drop with no writer: after one warm-up pin (whose reads may
/// force shared lazy nodes, memoizing cells into payloads that outlive the
/// pin), every further snapshot and fork teardown must release the store
/// to *exactly* the warmed-up baseline — a dead pin retains nothing.
TEST(ForkLeakCheck, EveryTeardownReleasesStoreExactly) {
  for (BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    Session session = Session::Open(kind);
    ASSERT_TRUE(session.Register(BaseRelation()).ok());

    {
      Snapshot warm = session.Snapshot();
      ASSERT_TRUE(warm.PossibleTuples("R").ok());
      ASSERT_TRUE(warm.CertainTuples("R").ok());
      Session warm_fork = session.Fork();
      ASSERT_TRUE(warm_fork.PossibleTuples("R").ok());
      ASSERT_TRUE(warm_fork.CertainTuples("R").ok());
    }
    core::store::StoreStats baseline = core::store::GetStoreStats();

    for (int i = 0; i < 8; ++i) {
      {
        Snapshot snapshot = session.Snapshot();
        ASSERT_TRUE(snapshot.PossibleTuples("R").ok());
      }
      {
        Session fork = session.Fork();
        ASSERT_TRUE(fork.PossibleTuples("R").ok());
      }
      core::store::StoreStats now = core::store::GetStoreStats();
      EXPECT_EQ(now.live_nodes, baseline.live_nodes)
          << "teardown " << i << " leaked payload nodes";
      EXPECT_EQ(now.live_cells, baseline.live_cells)
          << "teardown " << i << " leaked value cells";
    }
  }
}

/// A forked session is fully independent: writes on either side are
/// invisible to the other, versions advance independently, and the pin
/// carries the parent's versions at fork time.
TEST(ForkSemantics, ForkDivergesFromParentOnWrite) {
  for (BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    Session session = Session::Open(kind);
    ASSERT_TRUE(session.Register(BaseRelation()).ok());
    uint64_t v0 = session.RelationVersion("R");

    Session fork = session.Fork();
    EXPECT_EQ(session.Stats().forks, 1u);
    EXPECT_EQ(fork.RelationVersion("R"), v0);

    // Write on the fork: parent must not see it.
    rel::Relation add(rel::Schema::FromNames({"A"}), "R");
    add.AppendRow({I(42)});
    ASSERT_TRUE(fork.Apply(UpdateOp::InsertTuples("R", add)).ok());
    EXPECT_GT(fork.RelationVersion("R"), v0);
    EXPECT_EQ(session.RelationVersion("R"), v0);
    auto fork_rows = fork.PossibleTuples("R");
    auto parent_rows = session.PossibleTuples("R");
    ASSERT_TRUE(fork_rows.ok());
    ASSERT_TRUE(parent_rows.ok());
    EXPECT_TRUE(fork_rows->ContainsRow(std::vector<rel::Value>{I(42)}));
    EXPECT_FALSE(parent_rows->ContainsRow(std::vector<rel::Value>{I(42)}));

    // Write on the parent: fork must not see it either.
    rel::Relation add2(rel::Schema::FromNames({"A"}), "R");
    add2.AppendRow({I(43)});
    ASSERT_TRUE(session.Apply(UpdateOp::InsertTuples("R", add2)).ok());
    auto fork_rows2 = fork.PossibleTuples("R");
    ASSERT_TRUE(fork_rows2.ok());
    EXPECT_FALSE(fork_rows2->ContainsRow(std::vector<rel::Value>{I(43)}));
  }
}

/// The pin really is copy-on-write, not a copy: right after Fork() the
/// urel backend still shares its symbol table with the parent, and the
/// first divergent write (interning a new value) breaks the share.
TEST(ForkSemantics, UrelForkSharesSymbolsUntilDivergentWrite) {
  Session session = Session::Open(BackendKind::kUrel);
  ASSERT_TRUE(session.Register(BaseRelation()).ok());

  Session fork = session.Fork();
  const core::Urel* parent_u = std::as_const(session).urel();
  const core::Urel* fork_u = std::as_const(fork).urel();
  ASSERT_NE(parent_u, nullptr);
  ASSERT_NE(fork_u, nullptr);
  EXPECT_TRUE(parent_u->SharesSymbolsWith(*fork_u));

  rel::Relation add(rel::Schema::FromNames({"A"}), "R");
  add.AppendRow({I(777)});  // 777 is not in the shared dictionary yet
  ASSERT_TRUE(fork.Apply(UpdateOp::InsertTuples("R", add)).ok());
  EXPECT_FALSE(parent_u->SharesSymbolsWith(*std::as_const(fork).urel()));
}

/// Forks survive their parent: the store's refcount discipline lets a pin
/// outlive the session it came from and die on another thread.
TEST(ForkSemantics, ForkAndSnapshotOutliveParent) {
  for (BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(BackendKindName(kind));
    core::store::StoreStats before = core::store::GetStoreStats();
    {
      std::optional<Session> parent(Session::Open(kind));
      ASSERT_TRUE(parent->Register(BaseRelation()).ok());
      Session fork = parent->Fork();
      Snapshot snapshot = parent->Snapshot();
      parent.reset();  // parent dies first

      auto rows = fork.PossibleTuples("R");
      ASSERT_TRUE(rows.ok());
      EXPECT_EQ(rows->NumRows(), 3u);
      auto pinned = snapshot.PossibleTuples("R");
      ASSERT_TRUE(pinned.ok());
      EXPECT_TRUE(pinned->EqualsAsSet(*rows));

      // Teardown on a different thread than the one that pinned.
      Snapshot moved = std::move(snapshot);
      std::thread reaper([&fork, moved = std::move(moved)]() mutable {
        ASSERT_TRUE(moved.CertainTuples("R").ok());
        Session dying = std::move(fork);
      });
      reaper.join();
    }
    core::store::StoreStats after = core::store::GetStoreStats();
    EXPECT_EQ(after.live_nodes, before.live_nodes);
    EXPECT_EQ(after.live_cells, before.live_cells);
  }
}

}  // namespace
}  // namespace maywsd::api
