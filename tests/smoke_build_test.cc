// Link-layer smoke test: instantiates one object from each of the four
// libraries (ws_common -> ws_rel -> ws_core -> ws_census) so that a broken
// library boundary or missing TU fails here first, before the deeper suites.

#include <gtest/gtest.h>

#include "census/ipums.h"
#include "common/interner.h"
#include "common/status.h"
#include "core/wsdt.h"
#include "rel/relation.h"

namespace maywsd {
namespace {

TEST(SmokeBuildTest, CommonLinks) {
  Status s = Status::NotFound("smoke");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(InternString("smoke"), InternString("other"));
}

TEST(SmokeBuildTest, RelLinks) {
  rel::Relation r(rel::Schema::FromNames({"A", "B"}), "R");
  r.AppendRow({rel::Value::Int(1), rel::Value::String("x")});
  EXPECT_EQ(r.NumRows(), 1u);
}

TEST(SmokeBuildTest, CoreLinks) {
  core::Wsdt wsdt;
  EXPECT_TRUE(wsdt.Validate().ok());
}

TEST(SmokeBuildTest, CensusLinks) {
  census::CensusSchema schema = census::CensusSchema::Standard();
  rel::Relation base = census::GenerateCensus(schema, 8, 42);
  EXPECT_EQ(base.NumRows(), 8u);
}

}  // namespace
}  // namespace maywsd
