// The columnar U-relations store (core/urel.h) and its WorldSetOps
// adapter: dictionary interning, descriptor semantics of the positive-RA
// rewritings (conflicting-descriptor pairs vanish), the Section 6 answer
// surface via descriptor-aware aggregation, the ⇄ WSDT conversions as a
// world-set-preserving round trip, ValidateUrel's integrity checks, and
// the round-trip counter: positive RA must run with ZERO import/export
// round trips, while world-conditional updates take exactly one.

#include "core/urel.h"

#include <gtest/gtest.h>

#include "api/session.h"
#include "core/engine/plan_driver.h"
#include "core/engine/update_plan.h"
#include "core/engine/urel_backend.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::UpdateOp;
using testutil::I;
using testutil::RelSpec;
using testutil::S;
using testutil::SeededRng;

/// Two independent variables x (P(0)=0.4, P(1)=0.6) and y (fair coin);
/// R{A,B} = {(1,1) certain, (2,2) iff x=0, (3,3) iff x=1 ∧ y=0}.
struct SmallStore {
  Urel u;
  VarId x;
  VarId y;
};

SmallStore MakeSmallStore() {
  SmallStore s;
  s.x = s.u.AddVariable({0.4, 0.6});
  s.y = s.u.AddVariable({0.5, 0.5});
  UrelRelation r;
  r.name = "R";
  r.schema = rel::Schema::FromNames({"A", "B"});
  r.columns.resize(2);
  std::vector<UrelValueId> row = {s.u.Intern(I(1)), s.u.Intern(I(1))};
  r.AppendTuple(row, {});
  row = {s.u.Intern(I(2)), s.u.Intern(I(2))};
  UrelDescEntry if_x0[] = {{s.x, 0}};
  r.AppendTuple(row, if_x0);
  row = {s.u.Intern(I(3)), s.u.Intern(I(3))};
  UrelDescEntry if_x1_y0[] = {{s.x, 1}, {s.y, 0}};
  r.AppendTuple(row, if_x1_y0);
  EXPECT_TRUE(s.u.Add(std::move(r)).ok());
  EXPECT_TRUE(ValidateUrel(s.u).ok());
  return s;
}

/// Adds S{C} = {(2) iff x=1, (3) certain} to `s`.
void AddProbeRelation(SmallStore& s) {
  UrelRelation rel;
  rel.name = "S";
  rel.schema = rel::Schema::FromNames({"C"});
  rel.columns.resize(1);
  std::vector<UrelValueId> row = {s.u.Intern(I(2))};
  UrelDescEntry if_x1[] = {{s.x, 1}};
  rel.AppendTuple(row, if_x1);
  row = {s.u.Intern(I(3))};
  rel.AppendTuple(row, {});
  ASSERT_TRUE(s.u.Add(std::move(rel)).ok());
}

TEST(UrelStoreTest, DictionaryInternsByValueEquality) {
  Urel u;
  UrelValueId a = u.Intern(I(1));
  EXPECT_EQ(u.Intern(I(1)), a);
  // Value equality treats 1 == 1.0, so the ids must coincide — id equality
  // is what the select/join fast paths rely on.
  EXPECT_EQ(u.Intern(rel::Value::Double(1.0)), a);
  EXPECT_NE(u.Intern(I(2)), a);
  EXPECT_NE(u.Intern(S("1")), a);
  EXPECT_EQ(u.ValueAt(a), I(1));
  EXPECT_EQ(u.DictionarySize(), 3u);
}

TEST(UrelStoreTest, CatalogAndDescriptors) {
  SmallStore s = MakeSmallStore();
  EXPECT_TRUE(s.u.Contains("R"));
  EXPECT_EQ(s.u.Names(), std::vector<std::string>{"R"});
  EXPECT_EQ(s.u.NumVariables(), 2u);
  EXPECT_NEAR(s.u.Domain(s.x)[1], 0.6, 1e-12);

  auto r = s.u.Get("R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->NumRows(), 3u);
  EXPECT_TRUE((*r)->Descriptor(0).empty());
  ASSERT_EQ((*r)->Descriptor(2).size(), 2u);
  EXPECT_EQ((*r)->Descriptor(2)[0], (UrelDescEntry{s.x, 1}));
  // TIDs are stable and dense on a fresh relation.
  EXPECT_EQ((*r)->tids, (std::vector<int64_t>{0, 1, 2}));

  std::vector<rel::Value> row;
  s.u.MaterializeRow(**r, 1, row);
  EXPECT_EQ(row, (std::vector<rel::Value>{I(2), I(2)}));

  EXPECT_FALSE(s.u.Get("NOPE").ok());
  ASSERT_TRUE(s.u.Drop("R").ok());
  EXPECT_FALSE(s.u.Contains("R"));
}

TEST(UrelOperatorTest, SelectFiltersRowsDescriptorsVerbatim) {
  SmallStore s = MakeSmallStore();
  ASSERT_TRUE(UrelSelectConst(s.u, "R", "OUT", "A", CmpOp::kGe, I(2)).ok());
  auto out = s.u.Get("OUT");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->NumRows(), 2u);
  EXPECT_EQ((*out)->Descriptor(0).size(), 1u);  // (2,2) kept with x=0
  EXPECT_EQ((*out)->Descriptor(1).size(), 2u);  // (3,3) kept with x=1 ∧ y=0
  EXPECT_TRUE(ValidateUrel(s.u).ok());

  // Predicate trees go through the memoized bitmap path.
  ASSERT_TRUE(UrelSelectPredicate(
                  s.u, "R", "OUT2",
                  Predicate::Or(Predicate::Cmp("A", CmpOp::kEq, I(1)),
                                Predicate::CmpAttr("A", CmpOp::kNe, "B")))
                  .ok());
  auto out2 = s.u.Get("OUT2");
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ((*out2)->NumRows(), 1u);  // only (1,1)
}

TEST(UrelOperatorTest, ProductDropsContradictoryDescriptorPairs) {
  SmallStore s = MakeSmallStore();
  AddProbeRelation(s);
  ASSERT_TRUE(UrelProduct(s.u, "R", "S", "OUT").ok());
  auto out = s.u.Get("OUT");
  ASSERT_TRUE(out.ok());
  // 3 × 2 = 6 candidate pairs; (2,2)[x=0] × (2)[x=1] assigns x two values
  // and exists in no world — it must be dropped, leaving 5.
  EXPECT_EQ((*out)->NumRows(), 5u);
  EXPECT_TRUE(ValidateUrel(s.u).ok());
  // The merged descriptor of (3,3)[x=1 ∧ y=0] × (2)[x=1] is deduplicated
  // and canonical: exactly {x=1, y=0}.
  const UrelRelation& o = **out;
  bool found = false;
  std::vector<rel::Value> row;
  for (size_t i = 0; i < o.NumRows(); ++i) {
    s.u.MaterializeRow(o, i, row);
    if (row == std::vector<rel::Value>{I(3), I(3), I(2)}) {
      found = true;
      ASSERT_EQ(o.Descriptor(i).size(), 2u);
      EXPECT_EQ(o.Descriptor(i)[0], (UrelDescEntry{s.x, 1}));
      EXPECT_EQ(o.Descriptor(i)[1], (UrelDescEntry{s.y, 0}));
    }
  }
  EXPECT_TRUE(found);
}

TEST(UrelOperatorTest, JoinProbesOnDictionaryIds) {
  SmallStore s = MakeSmallStore();
  AddProbeRelation(s);
  ASSERT_TRUE(UrelJoin(s.u, "R", "S", "OUT", "A", "C").ok());
  auto out = s.u.Get("OUT");
  ASSERT_TRUE(out.ok());
  // A=2 meets C=2 but x=0 contradicts x=1 (dropped); A=3 meets the certain
  // C=3 and survives with R's descriptor.
  ASSERT_EQ((*out)->NumRows(), 1u);
  std::vector<rel::Value> row;
  s.u.MaterializeRow(**out, 0, row);
  EXPECT_EQ(row, (std::vector<rel::Value>{I(3), I(3), I(3)}));
  EXPECT_EQ((*out)->Descriptor(0).size(), 2u);
}

TEST(UrelOperatorTest, UnionProjectRenameAreDescriptorCopies) {
  SmallStore s = MakeSmallStore();
  ASSERT_TRUE(UrelCopy(s.u, "R", "R2").ok());
  ASSERT_TRUE(UrelUnion(s.u, "R", "R2", "U").ok());
  auto u_out = s.u.Get("U");
  ASSERT_TRUE(u_out.ok());
  EXPECT_EQ((*u_out)->NumRows(), 6u);

  ASSERT_TRUE(UrelProject(s.u, "R", "P", {"B"}).ok());
  auto p_out = s.u.Get("P");
  ASSERT_TRUE(p_out.ok());
  EXPECT_EQ((*p_out)->schema.arity(), 1u);
  EXPECT_EQ((*p_out)->NumRows(), 3u);
  EXPECT_EQ((*p_out)->Descriptor(2).size(), 2u);

  ASSERT_TRUE(UrelRename(s.u, "R", "N", {{"A", "X"}}).ok());
  auto n_out = s.u.Get("N");
  ASSERT_TRUE(n_out.ok());
  EXPECT_TRUE((*n_out)->schema.Contains("X"));
  EXPECT_FALSE((*n_out)->schema.Contains("A"));
  EXPECT_TRUE(ValidateUrel(s.u).ok());
}

TEST(UrelOperatorTest, DifferenceExpandsOverInvolvedAssignments) {
  SmallStore s = MakeSmallStore();
  // R2 = {(1,1) iff y=1}: R − R2 keeps (1,1) exactly where y=0.
  UrelRelation r2;
  r2.name = "R2";
  r2.schema = rel::Schema::FromNames({"A", "B"});
  r2.columns.resize(2);
  std::vector<UrelValueId> row = {s.u.Intern(I(1)), s.u.Intern(I(1))};
  UrelDescEntry if_y1[] = {{s.y, 1}};
  r2.AppendTuple(row, if_y1);
  ASSERT_TRUE(s.u.Add(std::move(r2)).ok());

  ASSERT_TRUE(UrelDifference(s.u, "R", "R2", "OUT").ok());
  EXPECT_TRUE(ValidateUrel(s.u).ok());
  std::vector<rel::Value> one_one = {I(1), I(1)};
  auto conf = UrelTupleConfidence(s.u, "OUT", one_one);
  ASSERT_TRUE(conf.ok());
  EXPECT_NEAR(*conf, 0.5, 1e-12);
  // The untouched uncertain tuples ride through with their confidences.
  std::vector<rel::Value> three = {I(3), I(3)};
  conf = UrelTupleConfidence(s.u, "OUT", three);
  ASSERT_TRUE(conf.ok());
  EXPECT_NEAR(*conf, 0.3, 1e-12);
}

TEST(UrelAnswerTest, PossibleCertainAndConfidence) {
  SmallStore s = MakeSmallStore();
  auto possible = UrelPossibleTuples(s.u, "R");
  ASSERT_TRUE(possible.ok());
  EXPECT_EQ(possible->NumRows(), 3u);

  auto certain = UrelCertainTuples(s.u, "R");
  ASSERT_TRUE(certain.ok());
  ASSERT_EQ(certain->NumRows(), 1u);
  EXPECT_TRUE(certain->ContainsRow(std::vector<rel::Value>{I(1), I(1)}));

  std::vector<rel::Value> two = {I(2), I(2)};
  auto conf = UrelTupleConfidence(s.u, "R", two);
  ASSERT_TRUE(conf.ok());
  EXPECT_NEAR(*conf, 0.4, 1e-12);  // P(x=0)
  std::vector<rel::Value> three = {I(3), I(3)};
  conf = UrelTupleConfidence(s.u, "R", three);
  ASSERT_TRUE(conf.ok());
  EXPECT_NEAR(*conf, 0.3, 1e-12);  // P(x=1)·P(y=0)
  std::vector<rel::Value> absent = {I(9), I(9)};
  conf = UrelTupleConfidence(s.u, "R", absent);
  ASSERT_TRUE(conf.ok());
  EXPECT_EQ(*conf, 0.0);

  auto is_certain = UrelTupleCertain(s.u, "R", two);
  ASSERT_TRUE(is_certain.ok());
  EXPECT_FALSE(*is_certain);

  auto with_conf = UrelPossibleTuplesWithConfidence(s.u, "R");
  ASSERT_TRUE(with_conf.ok());
  EXPECT_EQ(with_conf->arity(), 3u);  // A, B, conf
}

TEST(UrelUpdateTest, NativeUnconditionalUpdates) {
  SmallStore s = MakeSmallStore();
  rel::Relation fresh(rel::Schema::FromNames({"A", "B"}), "fresh");
  fresh.AppendRow({I(7), I(7)});
  ASSERT_TRUE(UrelInsert(s.u, "R", fresh).ok());
  std::vector<rel::Value> seven = {I(7), I(7)};
  auto conf = UrelTupleConfidence(s.u, "R", seven);
  ASSERT_TRUE(conf.ok());
  EXPECT_EQ(*conf, 1.0);  // inserted in every world

  ASSERT_TRUE(
      UrelModifyWhere(s.u, "R", Predicate::Cmp("A", CmpOp::kEq, I(2)),
                      std::vector<rel::Assignment>{{"B", I(8)}})
          .ok());
  std::vector<rel::Value> modified = {I(2), I(8)};
  conf = UrelTupleConfidence(s.u, "R", modified);
  ASSERT_TRUE(conf.ok());
  EXPECT_NEAR(*conf, 0.4, 1e-12);  // descriptor untouched

  auto before = s.u.Get("R");
  ASSERT_TRUE(before.ok());
  int64_t surviving_tid = (*before)->tids[2];
  ASSERT_TRUE(
      UrelDeleteWhere(s.u, "R", Predicate::Cmp("A", CmpOp::kLt, I(3))).ok());
  auto after = s.u.Get("R");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->NumRows(), 2u);  // (3,3) and (7,7)
  // Deletes keep survivors' TIDs stable instead of renumbering.
  EXPECT_EQ((*after)->tids[0], surviving_tid);
  EXPECT_TRUE(ValidateUrel(s.u).ok());
}

TEST(UrelConversionTest, ExportImportRoundTripPreservesWorldSets) {
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3}};
  for (int seed = 0; seed < 8; ++seed) {
    SeededRng rng(static_cast<uint64_t>(seed) * 6151 + 7);
    MAYWSD_SEED_TRACE(rng);
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    Wsdt wsdt = Wsdt::FromWsd(wsd).value();

    auto u = ExportUrel(wsdt);
    ASSERT_TRUE(u.ok()) << u.status();
    ASSERT_TRUE(ValidateUrel(*u).ok()) << ValidateUrel(*u);

    auto back = ImportUrel(*u);
    ASSERT_TRUE(back.ok()) << back.status();
    ASSERT_TRUE(back->Validate().ok());

    auto expected = wsdt.ToWsd().value().EnumerateWorlds(100000);
    auto actual = back->ToWsd().value().EnumerateWorlds(100000);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_TRUE(WorldSetsEquivalent(*expected, *actual))
        << "export/import round trip lost worlds at seed " << seed;
  }
}

TEST(UrelValidateTest, DetectsCorruption) {
  // Probabilities that do not sum to 1.
  {
    Urel u;
    u.AddVariable({0.5, 0.4});
    EXPECT_FALSE(ValidateUrel(u).ok());
  }
  // Non-canonical (unsorted) descriptor.
  {
    SmallStore s = MakeSmallStore();
    auto r = s.u.GetMutable("R");
    ASSERT_TRUE(r.ok());
    std::vector<UrelValueId> row = {s.u.Intern(I(4)), s.u.Intern(I(4))};
    UrelDescEntry unsorted[] = {{s.y, 0}, {s.x, 1}};
    (*r)->AppendTuple(row, unsorted);
    EXPECT_FALSE(ValidateUrel(s.u).ok());
  }
  // Descriptor referencing a variable the store does not have.
  {
    SmallStore s = MakeSmallStore();
    auto r = s.u.GetMutable("R");
    ASSERT_TRUE(r.ok());
    std::vector<UrelValueId> row = {s.u.Intern(I(4)), s.u.Intern(I(4))};
    UrelDescEntry dangling[] = {{VarId{99}, 0}};
    (*r)->AppendTuple(row, dangling);
    EXPECT_FALSE(ValidateUrel(s.u).ok());
  }
  // Duplicate TIDs.
  {
    SmallStore s = MakeSmallStore();
    auto r = s.u.GetMutable("R");
    ASSERT_TRUE(r.ok());
    (*r)->tids[1] = (*r)->tids[0];
    EXPECT_FALSE(ValidateUrel(s.u).ok());
  }
  // Ragged columns.
  {
    SmallStore s = MakeSmallStore();
    auto r = s.u.GetMutable("R");
    ASSERT_TRUE(r.ok());
    (*r)->columns[0].pop_back();
    EXPECT_FALSE(ValidateUrel(s.u).ok());
  }
}

// -- Round-trip accounting ----------------------------------------------------

TEST(UrelBackendTest, PositiveRaRunsWithZeroRoundTrips) {
  SeededRng rng(4242);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3}};
  Wsd wsd = testutil::RandomWsd(rng, specs, 3);
  auto u = ExportUrel(Wsdt::FromWsd(wsd).value());
  ASSERT_TRUE(u.ok());
  engine::UrelBackend backend(*u);

  // A positive-RA plan covering select, join, project, union: all pure
  // columnar rewritings — the store must never round-trip through the
  // template semantics.
  Plan plan = Plan::Union(
      Plan::Project({"A"},
                    Plan::Join(Predicate::CmpAttr("A", CmpOp::kEq, "C"),
                               Plan::Scan("R"), Plan::Scan("S"))),
      Plan::Project({"A"}, Plan::Select(Predicate::Cmp("B", CmpOp::kGe, I(1)),
                                        Plan::Scan("R"))));
  ASSERT_TRUE(engine::Evaluate(backend, plan, "OUT").ok());
  ASSERT_TRUE(engine::EvaluateOptimized(backend, plan, "OUT2").ok());
  EXPECT_EQ(backend.RoundTrips(), 0u);

  // Unconditional updates are native too.
  rel::Relation fresh(rel::Schema::FromNames({"A", "B"}), "fresh");
  fresh.AppendRow({I(0), I(0)});
  ASSERT_TRUE(
      engine::ApplyUpdate(backend, UpdateOp::InsertTuples("R", fresh)).ok());
  EXPECT_EQ(backend.RoundTrips(), 0u);

  // A world-conditional update is the documented one-round-trip fallback.
  ASSERT_TRUE(engine::ApplyUpdate(
                  backend, UpdateOp::DeleteWhere("R", Predicate::True())
                               .When(Plan::Scan("S")))
                  .ok());
  EXPECT_EQ(backend.RoundTrips(), 1u);
  ASSERT_TRUE(ValidateUrel(*u).ok());
}

TEST(UrelBackendTest, SessionSurfacesRoundTripCounter) {
  api::Session session = api::Session::Open(api::BackendKind::kUrel);
  rel::Relation base(rel::Schema::FromNames({"A", "B"}), "R");
  base.AppendRow({I(1), I(2)});
  base.AppendRow({I(2), I(3)});
  ASSERT_TRUE(session.Register(base).ok());
  Plan plan = Plan::Select(Predicate::Cmp("A", CmpOp::kGe, I(2)),
                           Plan::Scan("R"));
  ASSERT_TRUE(session.Run(plan, "OUT").ok());
  ASSERT_TRUE(session.PossibleTuples("OUT").ok());
  EXPECT_EQ(session.Stats().round_trips, 0u);
}

}  // namespace
}  // namespace maywsd::core
