#include "core/worldset.h"

#include <gtest/gtest.h>

#include "rel/eval.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::RandomWorlds;
using testutil::RelSpec;

std::vector<PossibleWorld> TwoWorlds() {
  // World 1: R = {(1,2)}, world 2: R = {(1,2),(3,4)}.
  std::vector<PossibleWorld> worlds(2);
  rel::Relation r1(rel::Schema::FromNames({"A", "B"}), "R");
  r1.AppendRow({I(1), I(2)});
  worlds[0].db.PutRelation(r1);
  worlds[0].prob = 0.25;
  rel::Relation r2(rel::Schema::FromNames({"A", "B"}), "R");
  r2.AppendRow({I(1), I(2)});
  r2.AppendRow({I(3), I(4)});
  worlds[1].db.PutRelation(r2);
  worlds[1].prob = 0.75;
  return worlds;
}

TEST(WorldSetTest, DeriveInlinedSchema) {
  auto schema = DeriveInlinedSchema(TwoWorlds());
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->relations.size(), 1u);
  EXPECT_EQ(schema->relations[0].max_tuples, 2);
  // Flat schema has |R|max × arity columns.
  EXPECT_EQ(schema->ToFlatSchema().arity(), 4u);
}

TEST(WorldSetTest, InlineUsesBottomPadding) {
  auto worlds = TwoWorlds();
  auto schema = DeriveInlinedSchema(worlds).value();
  auto wsr = InlineWorlds(worlds, schema);
  ASSERT_TRUE(wsr.ok());
  ASSERT_EQ(wsr->NumRows(), 2u);
  // World 1 is padded with a t⊥ tuple.
  EXPECT_TRUE(wsr->row(0).HasBottom());
  EXPECT_FALSE(wsr->row(1).HasBottom());
}

TEST(WorldSetTest, InlineUninlineRoundTrip) {
  auto worlds = TwoWorlds();
  auto schema = DeriveInlinedSchema(worlds).value();
  auto wsr = InlineWorlds(worlds, schema).value();
  std::vector<double> probs{0.25, 0.75};
  auto back = UninlineWorlds(wsr, schema, probs);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(WorldSetsEquivalent(worlds, *back));
}

TEST(WorldSetTest, WsdFromWorldsIsOneComponent) {
  auto wsd = WsdFromWorlds(TwoWorlds());
  ASSERT_TRUE(wsd.ok());
  EXPECT_EQ(wsd->NumLiveComponents(), 1u);
  EXPECT_TRUE(wsd->Validate().ok());
  auto rep = wsd->EnumerateWorlds(100);
  ASSERT_TRUE(rep.ok());
  EXPECT_TRUE(WorldSetsEquivalent(TwoWorlds(), *rep));
}

TEST(WorldSetTest, WsdFromWorldsEmptyFails) {
  EXPECT_FALSE(WsdFromWorlds({}).ok());
}

TEST(WorldSetTest, CollapseWorldsMergesDuplicates) {
  auto worlds = TwoWorlds();
  auto more = TwoWorlds();
  worlds.insert(worlds.end(), more.begin(), more.end());
  auto collapsed = CollapseWorlds(worlds);
  EXPECT_EQ(collapsed.size(), 2u);
  double total = 0;
  for (const auto& w : collapsed) total += w.prob;
  EXPECT_NEAR(total, 2.0, 1e-9);
}

TEST(WorldSetTest, EvaluatePerWorld) {
  auto worlds = TwoWorlds();
  rel::Plan q = rel::Plan::Select(
      rel::Predicate::Cmp("A", rel::CmpOp::kGt, I(1)), rel::Plan::Scan("R"));
  auto out = EvaluatePerWorld(worlds, q, "OUT");
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0].db.GetRelation("OUT").value()->NumRows(), 0u);
  EXPECT_EQ((*out)[1].db.GetRelation("OUT").value()->NumRows(), 1u);
}

TEST(WorldSetTest, RandomRoundTripThroughWsd) {
  Rng rng(77);
  for (int iter = 0; iter < 20; ++iter) {
    auto worlds = RandomWorlds(
        rng, {RelSpec{"R", {"A", "B"}, 2, 3}, RelSpec{"S", {"C"}, 2, 2}}, 4);
    auto wsd = WsdFromWorlds(worlds);
    ASSERT_TRUE(wsd.ok());
    ASSERT_TRUE(wsd->Validate().ok());
    auto rep = wsd->EnumerateWorlds(1000);
    ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(WorldSetsEquivalent(worlds, *rep)) << "iter " << iter;
  }
}

TEST(WorldSetTest, EnumerationCapTrips) {
  Rng rng(5);
  // 2^20 worlds exceeds a cap of 1000.
  std::vector<PossibleWorld> worlds =
      RandomWorlds(rng, {RelSpec{"R", {"A"}, 1, 2}}, 2);
  auto wsd = WsdFromWorlds(worlds).value();
  // Duplicate the lone component 20 times over distinct relations.
  for (int i = 0; i < 20; ++i) {
    std::string name = "R" + std::to_string(i);
    ASSERT_TRUE(
        wsd.AddRelation(name, rel::Schema::FromNames({"A"}), 1).ok());
    Component comp({FieldKey(name, 0, "A")});
    comp.AddWorld({I(0)}, 0.5);
    comp.AddWorld({I(1)}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(comp)).ok());
  }
  auto rep = wsd.EnumerateWorlds(1000);
  EXPECT_EQ(rep.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace maywsd::core
