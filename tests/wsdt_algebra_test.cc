#include "core/wsdt_algebra.h"

#include <gtest/gtest.h>

#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using testutil::I;
using testutil::RelSpec;

/// Oracle check: WsdtEvaluate against per-world evaluation of the same
/// world-set (via the WSD expansion).
void ExpectWsdtOracleEquivalent(const Wsd& wsd_in, const Plan& plan,
                                const char* label = "") {
  auto worlds = wsd_in.EnumerateWorlds(100000);
  ASSERT_TRUE(worlds.ok()) << label;
  auto expected = EvaluatePerWorld(*worlds, plan, "OUT");
  ASSERT_TRUE(expected.ok()) << label;

  auto wsdt_or = Wsdt::FromWsd(wsd_in);
  ASSERT_TRUE(wsdt_or.ok()) << label;
  Wsdt wsdt = std::move(wsdt_or).value();
  Status st = WsdtEvaluate(wsdt, plan, "OUT");
  ASSERT_TRUE(st.ok()) << label << ": " << st;
  ASSERT_TRUE(wsdt.Validate().ok()) << label;

  auto expanded = wsdt.ToWsd();
  ASSERT_TRUE(expanded.ok()) << label;
  auto actual = expanded->EnumerateWorlds(1000000, {"OUT"});
  ASSERT_TRUE(actual.ok()) << label;
  EXPECT_TRUE(WorldSetsEquivalent(*expected, *actual)) << label;
}

TEST(TriEvalTest, ThreeValuedLogic) {
  rel::Schema schema = rel::Schema::FromNames({"A", "B"});
  rel::Relation r(schema, "T");
  r.AppendRow({I(1), testutil::Q()});
  rel::TupleRef row = r.row(0);
  // Certain comparisons.
  EXPECT_EQ(TriEvalPredicate(Predicate::Cmp("A", CmpOp::kEq, I(1)), schema,
                             row)
                .value(),
            Tri::kTrue);
  // Unknown comparisons.
  EXPECT_EQ(TriEvalPredicate(Predicate::Cmp("B", CmpOp::kEq, I(1)), schema,
                             row)
                .value(),
            Tri::kUnknown);
  // Kleene: false AND unknown = false; true OR unknown = true.
  EXPECT_EQ(TriEvalPredicate(
                Predicate::And(Predicate::Cmp("A", CmpOp::kEq, I(9)),
                               Predicate::Cmp("B", CmpOp::kEq, I(1))),
                schema, row)
                .value(),
            Tri::kFalse);
  EXPECT_EQ(TriEvalPredicate(
                Predicate::Or(Predicate::Cmp("A", CmpOp::kEq, I(1)),
                              Predicate::Cmp("B", CmpOp::kEq, I(1))),
                schema, row)
                .value(),
            Tri::kTrue);
  EXPECT_EQ(TriEvalPredicate(
                Predicate::Not(Predicate::Cmp("B", CmpOp::kEq, I(1))),
                schema, row)
                .value(),
            Tri::kUnknown);
  // Attribute-attribute with an unknown side.
  EXPECT_EQ(TriEvalPredicate(Predicate::CmpAttr("A", CmpOp::kEq, "B"),
                             schema, row)
                .value(),
            Tri::kUnknown);
}

class WsdtAlgebraProperty : public ::testing::TestWithParam<int> {};

std::vector<RelSpec> Specs() {
  return {RelSpec{"R", {"A", "B"}, 2, 3}, RelSpec{"S", {"C", "D"}, 2, 3},
          RelSpec{"R2", {"A", "B"}, 2, 3}};
}

TEST_P(WsdtAlgebraProperty, SelectOracle) {
  Rng rng(GetParam());
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectWsdtOracleEquivalent(
      wsd,
      Plan::Select(Predicate::Cmp("A", CmpOp::kEq, I(1)), Plan::Scan("R")),
      "select-const");
  ExpectWsdtOracleEquivalent(
      wsd,
      Plan::Select(Predicate::CmpAttr("A", CmpOp::kEq, "B"), Plan::Scan("R")),
      "select-attr");
  ExpectWsdtOracleEquivalent(
      wsd,
      Plan::Select(Predicate::Or(Predicate::Cmp("A", CmpOp::kEq, I(0)),
                                 Predicate::Cmp("B", CmpOp::kGt, I(1))),
                   Plan::Scan("R")),
      "select-or");
}

TEST_P(WsdtAlgebraProperty, ProjectOracle) {
  Rng rng(GetParam() + 100);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectWsdtOracleEquivalent(wsd, Plan::Project({"A"}, Plan::Scan("R")),
                             "project");
  // Projection after a selection exercises the ⊥-presence machinery
  // (including the presence-helper path).
  ExpectWsdtOracleEquivalent(
      wsd,
      Plan::Project({"A"},
                    Plan::Select(Predicate::Cmp("B", CmpOp::kEq, I(1)),
                                 Plan::Scan("R"))),
      "project-after-select");
  ExpectWsdtOracleEquivalent(
      wsd,
      Plan::Project({"B"},
                    Plan::Select(Predicate::Cmp("B", CmpOp::kGt, I(0)),
                                 Plan::Scan("R"))),
      "project-kept-placeholder");
}

TEST_P(WsdtAlgebraProperty, UnionProductOracle) {
  Rng rng(GetParam() + 200);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectWsdtOracleEquivalent(
      wsd, Plan::Union(Plan::Scan("R"), Plan::Scan("R2")), "union");
  ExpectWsdtOracleEquivalent(
      wsd, Plan::Product(Plan::Scan("R"), Plan::Scan("S")), "product");
}

TEST_P(WsdtAlgebraProperty, JoinOracle) {
  Rng rng(GetParam() + 300);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectWsdtOracleEquivalent(
      wsd,
      Plan::Join(Predicate::CmpAttr("A", CmpOp::kEq, "C"), Plan::Scan("R"),
                 Plan::Scan("S")),
      "join");
  // Join with residual condition.
  ExpectWsdtOracleEquivalent(
      wsd,
      Plan::Join(Predicate::And(Predicate::CmpAttr("A", CmpOp::kEq, "C"),
                                Predicate::Cmp("B", CmpOp::kGt, I(0))),
                 Plan::Scan("R"), Plan::Scan("S")),
      "join-residual");
}

TEST_P(WsdtAlgebraProperty, DifferenceOracle) {
  Rng rng(GetParam() + 400);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectWsdtOracleEquivalent(
      wsd, Plan::Difference(Plan::Scan("R"), Plan::Scan("R2")), "difference");
}

TEST_P(WsdtAlgebraProperty, RenameAndComplexOracle) {
  Rng rng(GetParam() + 500);
  Wsd wsd = testutil::RandomWsd(rng, Specs(), 3);
  ExpectWsdtOracleEquivalent(wsd, Plan::Rename({{"A", "X"}}, Plan::Scan("R")),
                             "rename");
  // Q5-shaped query: join of two renamed selections.
  Plan left = Plan::Rename(
      {{"A", "P1"}},
      Plan::Select(Predicate::Cmp("B", CmpOp::kGt, I(0)), Plan::Scan("R")));
  Plan right = Plan::Rename(
      {{"C", "P2"}},
      Plan::Select(Predicate::Cmp("D", CmpOp::kGt, I(0)), Plan::Scan("S")));
  ExpectWsdtOracleEquivalent(
      wsd,
      Plan::Join(Predicate::CmpAttr("P1", CmpOp::kEq, "P2"), left, right),
      "q5-shape");
}

INSTANTIATE_TEST_SUITE_P(Seeds, WsdtAlgebraProperty, ::testing::Range(0, 12));

TEST(WsdtAlgebraTest, SelectCopiesOnlySurvivingRows) {
  // Certain rows failing the predicate do not reach the output template.
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A"}), "R");
  tmpl.AppendRow({I(1)});
  tmpl.AppendRow({I(2)});
  tmpl.AppendRow({I(3)});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  ASSERT_TRUE(WsdtSelect(wsdt, "R", "P",
                         Predicate::Cmp("A", CmpOp::kGe, I(2)))
                  .ok());
  EXPECT_EQ(wsdt.Template("P").value()->NumRows(), 2u);
  EXPECT_EQ(wsdt.ComputeStats().num_components, 0u);
}

TEST(WsdtAlgebraTest, ProjectMergesCertainDuplicates) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A", "B"}), "R");
  tmpl.AppendRow({I(1), I(10)});
  tmpl.AppendRow({I(1), I(20)});
  tmpl.AppendRow({I(2), I(30)});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  ASSERT_TRUE(WsdtProject(wsdt, "R", "P", {"A"}).ok());
  // Set semantics: π_A = {1, 2}.
  EXPECT_EQ(wsdt.Template("P").value()->NumRows(), 2u);
}

TEST(WsdtAlgebraTest, OptimizedEvaluationFusesProductSelect) {
  // σ_{A=C}(R × S) written as product+selection must give the same result
  // through WsdtEvaluateOptimized, which fuses it into the native join.
  Rng rng(21);
  Wsd wsd = testutil::RandomWsd(
      rng, {{"R", {"A", "B"}, 2, 3}, {"S", {"C", "D"}, 2, 3}}, 3);
  Plan naive = Plan::Select(Predicate::CmpAttr("A", CmpOp::kEq, "C"),
                            Plan::Product(Plan::Scan("R"), Plan::Scan("S")));
  auto worlds = wsd.EnumerateWorlds(100000).value();
  auto expected = EvaluatePerWorld(worlds, naive, "OUT").value();
  Wsdt wsdt = Wsdt::FromWsd(wsd).value();
  ASSERT_TRUE(WsdtEvaluateOptimized(wsdt, naive, "OUT").ok());
  auto actual =
      wsdt.ToWsd().value().EnumerateWorlds(1000000, {"OUT"}).value();
  EXPECT_TRUE(WorldSetsEquivalent(expected, actual));
}

TEST(WsdtAlgebraTest, EvaluateDropsTemporaries) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A", "B"}), "R");
  tmpl.AppendRow({I(1), I(10)});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Plan q = Plan::Project(
      {"A"},
      Plan::Select(Predicate::Cmp("B", CmpOp::kGt, I(0)), Plan::Scan("R")));
  ASSERT_TRUE(WsdtEvaluate(wsdt, q, "OUT").ok());
  auto names = wsdt.RelationNames();
  EXPECT_EQ(names.size(), 2u);  // R and OUT only
  EXPECT_TRUE(wsdt.HasRelation("OUT"));
}

}  // namespace
}  // namespace maywsd::core
