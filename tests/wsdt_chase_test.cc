#include "core/wsdt_chase.h"

#include <gtest/gtest.h>

#include "census/dependencies.h"
#include "census/ipums.h"
#include "census/noise.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::RelSpec;

class WsdtChaseProperty : public ::testing::TestWithParam<int> {};

TEST_P(WsdtChaseProperty, EgdMatchesBruteForce) {
  Rng rng(GetParam());
  Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B", "C"}, 3, 2}}, 4);
  auto before = wsd.EnumerateWorlds(100000).value();

  Egd egd;
  egd.relation = "R";
  egd.premises = {{"A", rel::CmpOp::kEq, I(0)}};
  egd.conclusion = {"B", rel::CmpOp::kNe, I(1)};
  std::vector<Dependency> deps{egd};

  auto expected = FilterWorldsByDependencies(before, deps);
  auto wsdt_or = Wsdt::FromWsd(wsd);
  ASSERT_TRUE(wsdt_or.ok());
  Wsdt wsdt = std::move(wsdt_or).value();
  Status st = WsdtChase(wsdt, deps);
  if (!expected.ok()) {
    EXPECT_EQ(st.code(), StatusCode::kInconsistent) << "seed " << GetParam();
    return;
  }
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_TRUE(wsdt.Validate().ok());
  auto after = wsdt.ToWsd().value().EnumerateWorlds(100000).value();
  EXPECT_TRUE(WorldSetsEquivalent(*expected, after)) << "seed " << GetParam();
}

TEST_P(WsdtChaseProperty, FdMatchesBruteForce) {
  Rng rng(GetParam() + 100);
  Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B"}, 3, 2}}, 4);
  auto before = wsd.EnumerateWorlds(100000).value();
  std::vector<Dependency> deps{Fd{"R", {"A"}, "B"}};
  auto expected = FilterWorldsByDependencies(before, deps);
  auto wsdt_or = Wsdt::FromWsd(wsd);
  ASSERT_TRUE(wsdt_or.ok());
  Wsdt wsdt = std::move(wsdt_or).value();
  Status st = WsdtChase(wsdt, deps);
  if (!expected.ok()) {
    EXPECT_EQ(st.code(), StatusCode::kInconsistent) << "seed " << GetParam();
    return;
  }
  ASSERT_TRUE(st.ok()) << st;
  auto after = wsdt.ToWsd().value().EnumerateWorlds(100000).value();
  EXPECT_TRUE(WorldSetsEquivalent(*expected, after)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WsdtChaseProperty, ::testing::Range(0, 15));

// The FD chase sorts every bucket by certain RHS value so pairs that are
// certainly equal on the RHS are skipped wholesale. This instance makes the
// skipped run dominate the bucket (many certain rows with equal key AND
// equal RHS) while an uncertain row still must be chased against the run —
// the result must equal the brute-force per-world filter exactly.
TEST(WsdtChaseTest, FdSortedBucketsSkipCertainlyEqualRuns) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A", "B"}), "R");
  for (int i = 0; i < 6; ++i) tmpl.AppendRow({I(0), I(7)});
  tmpl.AppendRow({I(0), testutil::Q()});  // uncertain RHS, same key
  tmpl.AppendRow({I(1), I(3)});           // different key: untouched
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  ASSERT_TRUE(wsdt.AddFieldComponent(FieldKey("R", 6, "B"), {I(7), I(8)},
                                     {0.5, 0.5})
                  .ok());

  auto before = wsdt.ToWsd().value().EnumerateWorlds(100000).value();
  std::vector<Dependency> deps{Fd{"R", {"A"}, "B"}};
  auto expected = FilterWorldsByDependencies(before, deps);
  ASSERT_TRUE(expected.ok());

  ASSERT_TRUE(WsdtChase(wsdt, deps).ok());
  ASSERT_TRUE(wsdt.Validate().ok());
  auto after = wsdt.ToWsd().value().EnumerateWorlds(100000).value();
  EXPECT_TRUE(WorldSetsEquivalent(*expected, after));

  // The surviving world pins the placeholder to 7 with probability 1.
  std::vector<rel::Value> t{I(0), I(7)};
  for (const PossibleWorld& w : after) {
    EXPECT_TRUE(w.db.GetRelation("R").value()->ContainsRow(t));
  }
}

TEST(WsdtChaseTest, CertainViolationIsInconsistent) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A", "B"}), "R");
  tmpl.AppendRow({I(1), I(5)});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Egd egd;
  egd.relation = "R";
  egd.premises = {{"A", rel::CmpOp::kEq, I(1)}};
  egd.conclusion = {"B", rel::CmpOp::kEq, I(0)};
  EXPECT_EQ(WsdtChaseEgd(wsdt, egd).code(), StatusCode::kInconsistent);
}

TEST(WsdtChaseTest, PlaceholderValueRemovedAndRenormalized) {
  // B ∈ {0,1,2} uniform; A=1 certain; chasing A=1 ⇒ B≠1 leaves B ∈ {0,2}
  // with probability 1/2 each.
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A", "B"}), "R");
  tmpl.AppendRow({I(1), testutil::Q()});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c({FieldKey("R", 0, "B")});
  c.AddWorld({I(0)}, 1.0 / 3);
  c.AddWorld({I(1)}, 1.0 / 3);
  c.AddWorld({I(2)}, 1.0 / 3);
  ASSERT_TRUE(wsdt.AddComponent(std::move(c)).ok());

  Egd egd;
  egd.relation = "R";
  egd.premises = {{"A", rel::CmpOp::kEq, I(1)}};
  egd.conclusion = {"B", rel::CmpOp::kNe, I(1)};
  ASSERT_TRUE(WsdtChaseEgd(wsdt, egd).ok());
  const Component& comp = wsdt.component(wsdt.LiveComponents()[0]);
  ASSERT_EQ(comp.NumWorlds(), 2u);
  EXPECT_NEAR(comp.prob(0), 0.5, 1e-9);
  EXPECT_NEAR(comp.prob(1), 0.5, 1e-9);
}

TEST(WsdtChaseTest, CensusChaseSmallScaleMatchesWsdChase) {
  // End-to-end shape test at tiny scale: chase of the 12 census EGDs on a
  // noisy extract agrees with the WSD-level chase.
  census::CensusSchema schema = census::CensusSchema::Standard();
  rel::Relation base = census::GenerateCensus(schema, 12, /*seed=*/1234);
  auto wsdt_or = census::MakeNoisyWsdt(base, schema, /*density=*/0.02,
                                       /*seed=*/99);
  ASSERT_TRUE(wsdt_or.ok());
  Wsdt wsdt = std::move(wsdt_or).value();
  ASSERT_TRUE(wsdt.Validate().ok());

  auto deps = census::CensusDependencies("R");
  Wsd wsd = wsdt.ToWsd().value();
  ASSERT_TRUE(WsdtChase(wsdt, deps).ok());
  ASSERT_TRUE(Chase(wsd, deps).ok());
  ASSERT_TRUE(wsdt.Validate().ok());

  auto a = wsdt.ToWsd().value().EnumerateWorlds(2000000);
  auto b = wsd.EnumerateWorlds(2000000);
  if (a.ok() && b.ok()) {
    EXPECT_TRUE(WorldSetsEquivalent(*a, *b));
  }
  // The original (noise-free) record always survives the chase.
  auto worlds = wsdt.ToWsd().value();
  // Base tuples are possible in the chased world-set.
  const rel::Relation* tmpl = wsdt.Template("R").value();
  EXPECT_EQ(tmpl->NumRows(), base.NumRows());
}

TEST(WsdtChaseTest, NoiseConsistencyInvariant) {
  // Because every or-set contains the original (dependency-satisfying)
  // value, the chase never reports inconsistency on census data.
  census::CensusSchema schema = census::CensusSchema::Standard();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    rel::Relation base = census::GenerateCensus(schema, 50, seed);
    auto wsdt = census::MakeNoisyWsdt(base, schema, 0.05, seed + 1);
    ASSERT_TRUE(wsdt.ok());
    EXPECT_TRUE(WsdtChase(*wsdt, census::CensusDependencies("R")).ok());
    EXPECT_TRUE(wsdt->Validate().ok());
  }
}

}  // namespace
}  // namespace maywsd::core
