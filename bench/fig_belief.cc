// Belief tracking across the four backends: move-apply throughput,
// knowledge-query latency (cold vs witness-cached), and the successor
// cache's cached-vs-cold expansion gap.
//
//   - move_apply:       Game::Step batches (guarded modifies + deletes)
//     through one agent's world set; per-batch p50/p99 and ops/s.
//   - knowledge_cold /  Knows() right after an invalidating observation
//     knowledge_cached: (witness re-materialized) vs the immediate
//     re-ask (served via the version-stamped witness cache and the
//     Session answer cache).
//   - successor_cold /  Game::Speculate on distinct action batches (COW
//     successor_hit:    fork + init + apply) vs re-expanding the same
//     batches. The harness exits non-zero if the hit pass forks or
//     applies ANYTHING (the memoized fork must be re-pinned as-is), or
//     if the cached expansion is not >= 10x cheaper than cold.
//   - guard_path:       a select[AθB] guard plan through Session::Run.
//     On the uniform backend this must run natively — the harness exits
//     non-zero if it pays any import → template → export round trip.
//
// Usage: fig_belief [--json PATH] — writes BENCH_fig_belief.json for CI.
// MAYWSD_SCALE scales the census world-set size as in the other
// harnesses.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/session.h"
#include "belief/belief.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "rel/update.h"

namespace {

using namespace maywsd;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::UpdateOp;
using rel::Value;

struct Sample {
  std::string phase;
  const char* backend = "wsdt";
  size_t ops = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double throughput = 0.0;        // ops/second
  uint64_t forks_delta = 0;       // belief-layer forks during the phase
  uint64_t applies_delta = 0;     // belief-layer applied ops during the phase
  uint64_t successor_hits = 0;    // cache hits during the phase
  uint64_t witness_hits = 0;      // knowledge-cache hits during the phase
  uint64_t witness_misses = 0;    // knowledge-cache misses during the phase
  uint64_t round_trips = 0;       // backend fallback round trips
  double cached_speedup = 0.0;    // cold p50 / hit p50 (successor phases)
};

void WriteJson(const char* path, const std::vector<Sample>& samples) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"figure\": \"fig_belief\",\n  \"samples\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"phase\": \"%s\", \"backend\": \"%s\", \"ops\": %zu, "
        "\"seconds\": %.6f, \"p50_ms\": %.5f, \"p99_ms\": %.5f, "
        "\"throughput\": %.1f, \"forks_delta\": %llu, "
        "\"applies_delta\": %llu, \"successor_hits\": %llu, "
        "\"witness_hits\": %llu, \"witness_misses\": %llu, "
        "\"round_trips\": %llu, \"cached_speedup\": %.1f}%s\n",
        s.phase.c_str(), s.backend, s.ops, s.seconds, s.p50_ms, s.p99_ms,
        s.throughput, static_cast<unsigned long long>(s.forks_delta),
        static_cast<unsigned long long>(s.applies_delta),
        static_cast<unsigned long long>(s.successor_hits),
        static_cast<unsigned long long>(s.witness_hits),
        static_cast<unsigned long long>(s.witness_misses),
        static_cast<unsigned long long>(s.round_trips), s.cached_speedup,
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

Plan AlwaysGuard() {
  return Plan::Select(Predicate::Cmp("AGE", CmpOp::kGe, Value::Int(0)),
                      Plan::Scan("R"));
}

/// One game move: a guarded modify plus a narrow delete — shaped like the
/// fig_updates writer so the apply path, not the batch construction,
/// dominates.
std::vector<UpdateOp> MoveBatch(int k) {
  std::vector<UpdateOp> batch;
  batch.push_back(UpdateOp::ModifyWhere("R",
                                        Predicate::Cmp("AGE", CmpOp::kLt,
                                                       Value::Int(45)),
                                        {{"FERTIL", Value::Int(k % 13)}})
                      .When(AlwaysGuard()));
  batch.push_back(UpdateOp::DeleteWhere(
      "R", Predicate::Cmp("AGE", CmpOp::kEq, Value::Int(200 + k))));
  return batch;
}

/// A speculative action batch, distinct per `k` so cold expansions never
/// collide in the successor cache.
std::vector<UpdateOp> ScenarioBatch(int k) {
  std::vector<UpdateOp> batch;
  batch.push_back(UpdateOp::ModifyWhere("R",
                                        Predicate::Cmp("AGE", CmpOp::kGe,
                                                       Value::Int(60)),
                                        {{"FERTIL", Value::Int(100 + k)}})
                      .When(AlwaysGuard()));
  return batch;
}

struct PhaseResult {
  std::vector<Sample> samples;
  bool ok = true;
};

PhaseResult RunBackend(api::BackendKind kind, const char* backend,
                       const core::Wsdt& wsdt, int moves, int queries,
                       int scenarios, int hit_rounds) {
  PhaseResult out;
  auto session_or = api::Session::Open(kind, wsdt);
  if (!session_or.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", backend,
                 session_or.status().ToString().c_str());
    std::exit(1);
  }
  belief::Game game;
  auto agent_or = game.AddAgent("hero", std::move(session_or).value());
  if (!agent_or.ok()) {
    std::fprintf(stderr, "agent failed: %s\n",
                 agent_or.status().ToString().c_str());
    std::exit(1);
  }
  belief::Agent* hero = agent_or.value();

  // -- move_apply -----------------------------------------------------------
  {
    std::vector<double> latencies;
    latencies.reserve(moves);
    size_t ops = 0;
    Timer wall;
    for (int k = 0; k < moves; ++k) {
      std::vector<UpdateOp> batch = MoveBatch(k);
      ops += batch.size();
      Timer t;
      Status st = game.Step(batch);
      latencies.push_back(t.Millis());
      if (!st.ok()) {
        std::fprintf(stderr, "step failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
    Sample s;
    s.phase = "move_apply";
    s.backend = backend;
    s.ops = ops;
    s.seconds = wall.Seconds();
    s.p50_ms = Percentile(latencies, 0.50);
    s.p99_ms = Percentile(latencies, 0.99);
    s.throughput = static_cast<double>(ops) / s.seconds;
    s.round_trips = hero->session().Stats().round_trips;
    out.samples.push_back(std::move(s));
  }

  // A stable probe: some tuple possible in the stepped world set.
  auto probe_rows = hero->session().PossibleTuples("R");
  if (!probe_rows.ok() || probe_rows->NumRows() == 0) {
    std::fprintf(stderr, "no probe tuple on %s\n", backend);
    std::exit(1);
  }
  std::span<const Value> row0 = probe_rows->row(0).span();
  const std::vector<Value> probe(row0.begin(), row0.end());

  // -- knowledge_cold / knowledge_cached ------------------------------------
  {
    std::vector<double> cold, cached;
    cold.reserve(queries);
    cached.reserve(queries);
    belief::BeliefStats before = hero->Stats();
    Timer wall;
    for (int k = 0; k < queries; ++k) {
      // Invalidate the witness relations (version bump), then ask twice:
      // first ask re-materializes, the immediate re-ask is served from
      // the caches.
      std::vector<UpdateOp> nudge;
      nudge.push_back(UpdateOp::DeleteWhere(
          "R", Predicate::Cmp("AGE", CmpOp::kEq, Value::Int(-1 - k))));
      if (!hero->Observe(std::span<const UpdateOp>(nudge)).ok()) {
        std::exit(1);
      }
      Timer t1;
      auto first = hero->Knows("R", probe);
      cold.push_back(t1.Millis());
      Timer t2;
      auto again = hero->Knows("R", probe);
      cached.push_back(t2.Millis());
      if (!first.ok() || !again.ok() ||
          first.value() != again.value()) {
        std::fprintf(stderr, "knowledge query failed on %s\n", backend);
        std::exit(1);
      }
    }
    double seconds = wall.Seconds();
    belief::BeliefStats after = hero->Stats();
    Sample sc;
    sc.phase = "knowledge_cold";
    sc.backend = backend;
    sc.ops = cold.size();
    sc.seconds = seconds;
    sc.p50_ms = Percentile(cold, 0.50);
    sc.p99_ms = Percentile(cold, 0.99);
    sc.throughput = static_cast<double>(cold.size()) / seconds;
    sc.witness_misses = after.knowledge_cache_misses -
                        before.knowledge_cache_misses;
    out.samples.push_back(std::move(sc));
    Sample sh;
    sh.phase = "knowledge_cached";
    sh.backend = backend;
    sh.ops = cached.size();
    sh.seconds = seconds;
    sh.p50_ms = Percentile(cached, 0.50);
    sh.p99_ms = Percentile(cached, 0.99);
    sh.throughput = static_cast<double>(cached.size()) / seconds;
    sh.witness_hits = after.knowledge_cache_hits - before.knowledge_cache_hits;
    sh.cached_speedup =
        sh.p50_ms > 0 ? Percentile(cold, 0.50) / sh.p50_ms : 0.0;
    out.samples.push_back(std::move(sh));
  }

  // -- successor_cold / successor_hit ---------------------------------------
  {
    std::vector<double> cold;
    cold.reserve(scenarios);
    belief::BeliefStats s0 = game.Stats();
    Timer cold_wall;
    for (int k = 0; k < scenarios; ++k) {
      std::vector<UpdateOp> batch = ScenarioBatch(k);
      Timer t;
      auto succ = game.Speculate("hero", batch);
      cold.push_back(t.Millis());
      if (!succ.ok()) {
        std::fprintf(stderr, "speculate failed: %s\n",
                     succ.status().ToString().c_str());
        std::exit(1);
      }
    }
    double cold_seconds = cold_wall.Seconds();
    belief::BeliefStats s1 = game.Stats();

    std::vector<double> hits;
    hits.reserve(static_cast<size_t>(scenarios) * hit_rounds);
    Timer hit_wall;
    for (int round = 0; round < hit_rounds; ++round) {
      for (int k = 0; k < scenarios; ++k) {
        // Rebuilt from scratch: structural equality, not pointer reuse.
        std::vector<UpdateOp> batch = ScenarioBatch(k);
        Timer t;
        auto succ = game.Speculate("hero", batch);
        hits.push_back(t.Millis());
        if (!succ.ok()) std::exit(1);
      }
    }
    double hit_seconds = hit_wall.Seconds();
    belief::BeliefStats s2 = game.Stats();

    Sample sc;
    sc.phase = "successor_cold";
    sc.backend = backend;
    sc.ops = cold.size();
    sc.seconds = cold_seconds;
    sc.p50_ms = Percentile(cold, 0.50);
    sc.p99_ms = Percentile(cold, 0.99);
    sc.throughput = static_cast<double>(cold.size()) / cold_seconds;
    sc.forks_delta = s1.forks - s0.forks;
    sc.applies_delta = s1.applies - s0.applies;
    out.samples.push_back(std::move(sc));

    Sample sh;
    sh.phase = "successor_hit";
    sh.backend = backend;
    sh.ops = hits.size();
    sh.seconds = hit_seconds;
    sh.p50_ms = Percentile(hits, 0.50);
    sh.p99_ms = Percentile(hits, 0.99);
    sh.throughput = static_cast<double>(hits.size()) / hit_seconds;
    sh.forks_delta = s2.forks - s1.forks;
    sh.applies_delta = s2.applies - s1.applies;
    sh.successor_hits = s2.successor_hits - s1.successor_hits;
    sh.cached_speedup = sh.p50_ms > 0 ? sc.p50_ms / sh.p50_ms : 0.0;

    // The memoization contract, enforced here so CI fails loudly: a
    // re-expansion must re-pin the cached fork — zero forks, zero
    // re-applied ops — and be at least 10x cheaper than cold expansion.
    if (sh.forks_delta != 0 || sh.applies_delta != 0) {
      std::fprintf(stderr,
                   "successor cache violated on %s: hit pass forked %llu / "
                   "applied %llu\n",
                   backend, static_cast<unsigned long long>(sh.forks_delta),
                   static_cast<unsigned long long>(sh.applies_delta));
      out.ok = false;
    }
    if (sh.successor_hits !=
        static_cast<uint64_t>(scenarios) * static_cast<uint64_t>(hit_rounds)) {
      std::fprintf(stderr, "successor cache missed on %s\n", backend);
      out.ok = false;
    }
    if (sh.cached_speedup < 10.0) {
      std::fprintf(stderr,
                   "cached successor expansion only %.1fx cheaper than cold "
                   "on %s (need >= 10x)\n",
                   sh.cached_speedup, backend);
      out.ok = false;
    }
    out.samples.push_back(std::move(sh));
  }

  // -- guard_path -----------------------------------------------------------
  {
    auto fresh_or = api::Session::Open(kind, wsdt);
    if (!fresh_or.ok()) std::exit(1);
    api::Session fresh = std::move(fresh_or).value();
    Plan guard = Plan::Select(Predicate::CmpAttr("AGE", CmpOp::kGt, "FERTIL"),
                              Plan::Scan("R"));
    uint64_t rt0 = fresh.Stats().round_trips;
    std::vector<double> latencies;
    constexpr int kGuardRuns = 4;
    latencies.reserve(kGuardRuns);
    Timer wall;
    for (int k = 0; k < kGuardRuns; ++k) {
      std::string out_rel = "GP" + std::to_string(k);
      Timer t;
      Status st = fresh.Run(guard, out_rel);
      latencies.push_back(t.Millis());
      if (!st.ok()) {
        std::fprintf(stderr, "guard run failed on %s: %s\n", backend,
                     st.ToString().c_str());
        std::exit(1);
      }
    }
    Sample s;
    s.phase = "guard_path";
    s.backend = backend;
    s.ops = latencies.size();
    s.seconds = wall.Seconds();
    s.p50_ms = Percentile(latencies, 0.50);
    s.p99_ms = Percentile(latencies, 0.99);
    s.throughput = static_cast<double>(s.ops) / s.seconds;
    s.round_trips = fresh.Stats().round_trips - rt0;
    // The satellite's contract: select[AθB] runs natively on the uniform
    // store — no import → template → export round trip.
    if (kind == api::BackendKind::kUniform && s.round_trips != 0) {
      std::fprintf(stderr,
                   "uniform select[AθB] guard path paid %llu round trips\n",
                   static_cast<unsigned long long>(s.round_trips));
      out.ok = false;
    }
    out.samples.push_back(std::move(s));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  // The wsd reference backend evaluates the bad-witness plan (Product +
  // Difference over the enumerated world set) super-linearly in rows —
  // ~3.5 s/query at 60 census rows. The default sizes keep the full-scale
  // race honest but finite; the wsd-vs-rest witness gap IS the figure.
  const double scale = maywsd::bench::ScaleFactor();
  const size_t rows = std::max<size_t>(static_cast<size_t>(64 * scale), 24);
  const int moves = std::max(4, static_cast<int>(16 * scale));
  const int queries = std::max(3, static_cast<int>(6 * scale));
  const int scenarios = std::max(4, static_cast<int>(8 * scale));
  const int hit_rounds = 5;
  const census::CensusSchema schema = census::CensusSchema::Standard();
  core::Wsdt wsdt = bench::MakeCensusWsdt(schema, rows, 0.001);

  std::vector<Sample> samples;
  bool ok = true;
  const char* backends[] = {"wsd", "wsdt", "uniform", "urel"};
  for (const char* backend : backends) {
    api::BackendKind kind = *api::ParseBackendKind(backend);
    PhaseResult result =
        RunBackend(kind, backend, wsdt, moves, queries, scenarios, hit_rounds);
    ok = ok && result.ok;
    for (Sample& s : result.samples) {
      std::printf("%-16s %-8s ops=%-5zu p50=%.4fms p99=%.4fms %.0f ops/s "
                  "forks=%llu applies=%llu hits=%llu rt=%llu speedup=%.1fx\n",
                  s.phase.c_str(), s.backend, s.ops, s.p50_ms, s.p99_ms,
                  s.throughput, static_cast<unsigned long long>(s.forks_delta),
                  static_cast<unsigned long long>(s.applies_delta),
                  static_cast<unsigned long long>(s.successor_hits),
                  static_cast<unsigned long long>(s.round_trips),
                  s.cached_speedup);
      samples.push_back(std::move(s));
    }
  }

  if (json_path != nullptr) WriteJson(json_path, samples);
  return ok ? 0 : 1;  // JSON is written either way, for forensics
}
