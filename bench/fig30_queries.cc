// Figure 30 (a)–(f): evaluation time for queries Q1..Q6 of Figure 29 on
// UWSDTs of various sizes and placeholder densities, against the one-world
// baseline (density 0%: the original query evaluated on the plain template
// through the relational engine).
//
// Expected shape: per query, time grows linearly with relation size, the
// density curves sit on top of each other and track the 0% one-world curve
// closely (processing incomplete information costs roughly one world);
// Q5's join is the most expensive query and grows superlinearly at the
// largest sizes in the paper.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "rel/eval.h"

int main() {
  using namespace maywsd;
  census::CensusSchema schema = census::CensusSchema::Standard();
  std::vector<size_t> sizes = bench::SizeTicks();
  std::vector<double> densities = bench::Densities();

  // times[q][size][density-column]; column 0 = one-world baseline.
  std::map<int, std::map<size_t, std::vector<double>>> times;
  std::map<int, std::map<size_t, size_t>> result_rows;

  for (size_t rows : sizes) {
    rel::Relation base =
        census::GenerateCensus(schema, rows, /*seed=*/0xC0FFEE ^ rows);
    // One-world baseline.
    rel::Database db;
    db.PutRelation(base);
    for (int q = 1; q <= 6; ++q) {
      Timer t;
      auto out = rel::Evaluate(census::CensusQuery(q, "R"), db);
      if (!out.ok()) {
        std::fprintf(stderr, "one-world Q%d failed\n", q);
        return 1;
      }
      times[q][rows].push_back(t.Seconds());
    }
    // Chased UWSDT per density; queries reuse it.
    for (double density : densities) {
      auto wsdt_or = census::MakeNoisyWsdt(base, schema, density,
                                           /*seed=*/0xBEEF ^ rows);
      if (!wsdt_or.ok()) return 1;
      core::Wsdt wsdt = std::move(wsdt_or).value();
      bench::ChaseCensus(wsdt);
      for (int q = 1; q <= 6; ++q) {
        core::Wsdt copy = wsdt;
        std::string out = "OUT";
        Timer t;
        Status st =
            core::WsdtEvaluate(copy, census::CensusQuery(q, "R"), out);
        if (!st.ok()) {
          std::fprintf(stderr, "Q%d failed: %s\n", q, st.ToString().c_str());
          return 1;
        }
        times[q][rows].push_back(t.Seconds());
        result_rows[q][rows] = copy.Template(out).value()->NumRows();
      }
    }
  }

  for (int q = 1; q <= 6; ++q) {
    std::printf("# Figure 30(%c): query Q%d time in seconds\n",
                static_cast<char>('a' + q - 1), q);
    std::printf("%10s %12s", "tuples", "0%");
    for (double d : densities) std::printf(" %12s", bench::DensityLabel(d));
    std::printf(" %12s\n", "|result|");
    for (size_t rows : sizes) {
      std::printf("%10zu", rows);
      for (double t : times[q][rows]) std::printf(" %12.4f", t);
      std::printf(" %12zu\n", result_rows[q][rows]);
    }
    std::printf("\n");
  }
  return 0;
}
