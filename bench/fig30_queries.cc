// Figure 30 (a)–(f): evaluation time for queries Q1..Q6 of Figure 29 on
// UWSDTs of various sizes and placeholder densities, against the one-world
// baseline (density 0%: the original query evaluated on the plain template
// through the relational engine).
//
// Every world-set evaluation goes through api::Session — one facade, one
// engine lowering, interchangeable backends. Besides the paper's WSDT
// curves, a cross-backend section runs the same queries over the
// Section 4 WSD representation and the Section 3 C/F/W uniform store of
// the same world set at small sizes (the WSD operators materialize
// |R|max-sized intermediates and the uniform store pays template-
// semantics round trips for the non-relational operators, so this section
// stays small — which is the paper's point: the template refinement is
// what scales), tracking the WSD-vs-WSDT-vs-uniform trajectory.
//
// Expected shape: per query, time grows linearly with relation size, the
// density curves sit on top of each other and track the 0% one-world curve
// closely (processing incomplete information costs roughly one world);
// Q5's join is the most expensive query and grows superlinearly at the
// largest sizes in the paper.
//
// Usage: fig30_queries [--json PATH] — also writes the measurements as a
// flat JSON document (consumed by CI as BENCH_fig30_queries.json).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench/bench_util.h"
#include "rel/eval.h"

namespace {

struct Sample {
  int query = 0;
  size_t rows = 0;
  double density = 0.0;  // 0.0 = one-world baseline
  const char* backend = "wsdt";
  double seconds = 0.0;
  size_t result_rows = 0;
  int threads = 1;  // Session fan-out width (1 = sequential)
  // Import → template-semantics → export round trips the backend paid for
  // the run (Session::Stats): 0 on representation-native paths — the
  // U-relations claim is that positive RA stays at 0.
  uint64_t round_trips = 0;
};

void WriteJson(const char* path, const std::vector<Sample>& samples) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"figure\": \"fig30_queries\",\n  \"samples\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"query\": %d, \"rows\": %zu, \"density\": %g, "
                 "\"backend\": \"%s\", \"seconds\": %.6f, "
                 "\"result_rows\": %zu, \"threads\": %d, "
                 "\"round_trips\": %llu}%s\n",
                 s.query, s.rows, s.density, s.backend, s.seconds,
                 s.result_rows, s.threads,
                 static_cast<unsigned long long>(s.round_trips),
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace maywsd;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  census::CensusSchema schema = census::CensusSchema::Standard();
  std::vector<size_t> sizes = bench::SizeTicks();
  std::vector<double> densities = bench::Densities();
  std::vector<Sample> samples;

  // times[q][size][density-column]; column 0 = one-world baseline.
  std::map<int, std::map<size_t, std::vector<double>>> times;
  std::map<int, std::map<size_t, size_t>> result_rows;

  for (size_t rows : sizes) {
    rel::Relation base =
        census::GenerateCensus(schema, rows, /*seed=*/0xC0FFEE ^ rows);
    // One-world baseline.
    rel::Database db;
    db.PutRelation(base);
    for (int q = 1; q <= 6; ++q) {
      Timer t;
      auto out = rel::Evaluate(census::CensusQuery(q, "R"), db);
      if (!out.ok()) {
        std::fprintf(stderr, "one-world Q%d failed\n", q);
        return 1;
      }
      double secs = t.Seconds();
      times[q][rows].push_back(secs);
      samples.push_back({q, rows, 0.0, "one-world", secs, out->NumRows()});
    }
    // Chased UWSDT per density; queries reuse it and run through the
    // Session facade over the WSDT backend.
    for (double density : densities) {
      auto wsdt_or = census::MakeNoisyWsdt(base, schema, density,
                                           /*seed=*/0xBEEF ^ rows);
      if (!wsdt_or.ok()) return 1;
      core::Wsdt wsdt = std::move(wsdt_or).value();
      bench::ChaseCensus(wsdt);
      for (int q = 1; q <= 6; ++q) {
        api::Session session = api::Session::Open(wsdt);
        Timer t;
        Status st = session.Run(census::CensusQuery(q, "R"), "OUT");
        if (!st.ok()) {
          std::fprintf(stderr, "Q%d failed: %s\n", q, st.ToString().c_str());
          return 1;
        }
        double secs = t.Seconds();
        size_t n = session.wsdt()->Template("OUT").value()->NumRows();
        times[q][rows].push_back(secs);
        result_rows[q][rows] = n;
        samples.push_back({q, rows, density, "wsdt", secs, n});
      }
    }
  }

  for (int q = 1; q <= 6; ++q) {
    std::printf("# Figure 30(%c): query Q%d time in seconds\n",
                static_cast<char>('a' + q - 1), q);
    std::printf("%10s %12s", "tuples", "0%");
    for (double d : densities) std::printf(" %12s", bench::DensityLabel(d));
    std::printf(" %12s\n", "|result|");
    for (size_t rows : sizes) {
      std::printf("%10zu", rows);
      for (double t : times[q][rows]) std::printf(" %12.4f", t);
      std::printf(" %12zu\n", result_rows[q][rows]);
    }
    std::printf("\n");
  }

  // Cross-backend trajectory: identical plans over WSD, WSDT, the uniform
  // C/F/W store and the columnar U-relations store through the one Session
  // facade. WSD intermediates are |R|max-sized, Q5's product composes
  // components quadratically (~14 s at 32 rows), and the uniform store
  // pays whole-store template-semantics round trips for non-relational
  // operators, so this section stays at small fixed sizes regardless of
  // MAYWSD_SCALE — which is the paper's point: the template refinement and
  // the descriptor rewriting are what scale. The rt column counts the
  // uniform/urel backends' import/export round trips: the U-relations
  // claim is that positive RA stays at 0.
  const double kXDensity = 0.001;
  std::printf(
      "# Cross-backend: Session facade, WSD vs WSDT vs uniform vs urel "
      "(density %s)\n",
      bench::DensityLabel(kXDensity));
  std::printf("%10s %6s %12s %12s %12s %12s %8s %8s\n", "tuples", "query",
              "wsd", "wsdt", "uniform", "urel", "rt(unif)", "rt(urel)");
  for (size_t rows : {size_t{16}, size_t{32}}) {
    rel::Relation base =
        census::GenerateCensus(schema, rows, /*seed=*/0xC0FFEE ^ rows);
    auto wsdt_or = census::MakeNoisyWsdt(base, schema, kXDensity,
                                         /*seed=*/0xBEEF ^ rows);
    if (!wsdt_or.ok()) return 1;
    core::Wsdt wsdt = std::move(wsdt_or).value();
    bench::ChaseCensus(wsdt);
    for (int q = 1; q <= 6; ++q) {
      std::map<std::string, double> secs;
      std::map<std::string, uint64_t> trips;
      size_t n = 0;
      for (const char* backend : {"wsd", "wsdt", "uniform", "urel"}) {
        auto kind_or = api::ParseBackendKind(backend);
        if (!kind_or.ok()) return 1;
        auto session_or = api::Session::Open(*kind_or, wsdt);
        if (!session_or.ok()) return 1;
        api::Session session = std::move(session_or).value();
        Timer t;
        Status st = session.Run(census::CensusQuery(q, "R"), "OUT");
        if (!st.ok()) {
          std::fprintf(stderr, "%s Q%d failed: %s\n", backend, q,
                       st.ToString().c_str());
          return 1;
        }
        secs[backend] = t.Seconds();
        trips[backend] = session.Stats().round_trips;
        auto out = session.PossibleTuples("OUT");
        if (!out.ok()) return 1;
        n = out->NumRows();
        samples.push_back({q, rows, kXDensity, backend, secs[backend], n, 1,
                           trips[backend]});
      }
      std::printf("%10zu %6d %12.4f %12.4f %12.4f %12.4f %8llu %8llu\n",
                  rows, q, secs["wsd"], secs["wsdt"], secs["uniform"],
                  secs["urel"],
                  static_cast<unsigned long long>(trips["uniform"]),
                  static_cast<unsigned long long>(trips["urel"]));
    }
  }
  std::printf("\n");

  // Parallel fan-out: the same queries through Session with a sharded
  // worker pool (threads ∈ {1, 2, 4}). The WSDT column measures the raw
  // data-parallel fan-out (template rows partition into independent
  // component groups at census densities, so Q1–Q4/Q6 shard; Q5 scans R
  // twice and falls back). The uniform column additionally profits
  // single-threaded: a sharded run pays ONE import/export round trip for
  // the whole plan instead of one per non-relational operator. The urel
  // column runs at the full WSDT size; its cost gate declines the fan-out
  // for Q1–Q4/Q6 (single-leaf unary chains are one bandwidth-bound pass —
  // slicing every column of the store first can only lose) and Q5 scans R
  // twice, so the urel t≥2 columns measure the sequential path and must
  // match t=1 instead of regressing behind slice-construction cost.
  {
    const double kPDensity = 0.001;
    std::printf(
        "# Parallel fan-out: Session threads dimension (density %s)\n",
        bench::DensityLabel(kPDensity));
    std::printf("%10s %8s %6s %12s %12s %12s %10s\n", "tuples", "backend",
                "query", "t=1", "t=2", "t=4", "x(t=4)");
    struct Cell {
      const char* backend;
      size_t rows;
    };
    size_t wsdt_rows = sizes.back();
    size_t uniform_rows = std::min<size_t>(sizes.back(), 8000);
    for (Cell cell : {Cell{"wsdt", wsdt_rows}, Cell{"uniform", uniform_rows},
                      Cell{"urel", wsdt_rows}}) {
      rel::Relation base = census::GenerateCensus(
          schema, cell.rows, /*seed=*/0xC0FFEE ^ cell.rows);
      auto wsdt_or = census::MakeNoisyWsdt(base, schema, kPDensity,
                                           /*seed=*/0xBEEF ^ cell.rows);
      if (!wsdt_or.ok()) return 1;
      core::Wsdt wsdt = std::move(wsdt_or).value();
      bench::ChaseCensus(wsdt);
      for (int q = 1; q <= 6; ++q) {
        std::map<int, double> per_thread;
        for (int t : {1, 2, 4}) {
          api::SessionOptions options;
          options.threads = t;
          auto kind_or = api::ParseBackendKind(cell.backend);
          if (!kind_or.ok()) return 1;
          auto session_or = api::Session::Open(*kind_or, wsdt, options);
          if (!session_or.ok()) return 1;
          api::Session session = std::move(session_or).value();
          Timer timer;  // conversion cost excluded from every column
          Status st = session.Run(census::CensusQuery(q, "R"), "OUT");
          if (!st.ok()) {
            std::fprintf(stderr, "parallel %s Q%d (t=%d) failed: %s\n",
                         cell.backend, q, t, st.ToString().c_str());
            return 1;
          }
          double secs = timer.Seconds();
          size_t n = 0;
          if (auto out = session.PossibleTuples("OUT"); out.ok()) {
            n = out->NumRows();
          }
          per_thread[t] = secs;
          samples.push_back({q, cell.rows, kPDensity, cell.backend, secs, n,
                             t, session.Stats().round_trips});
        }
        std::printf("%10zu %8s %6d %12.4f %12.4f %12.4f %9.2fx\n", cell.rows,
                    cell.backend, q, per_thread[1], per_thread[2],
                    per_thread[4],
                    per_thread[4] > 0 ? per_thread[1] / per_thread[4] : 0.0);
      }
    }
    std::printf("\n");
  }

  if (json_path != nullptr) WriteJson(json_path, samples);
  return 0;
}
