// Serving under concurrency: MVCC snapshot reads vs a live writer, and
// the sharded unconditional-update fan-out, across all four backends.
//
// The paper's prototype served world-set relations from PostgreSQL — many
// clients, one store. This harness measures the serving properties of the
// in-process reproduction:
//
//   - read_only:  N reader threads answering possible(R) from pinned
//     Session snapshots, no writer. Baseline read p50/p99.
//   - mixed:      the same readers while a writer thread continuously
//     applies whole-relation modifies. Snapshot reads answer from their
//     pinned view, so they never wait behind the writer — the JSON
//     records the snapshots' blocked-on-writer wait count (structurally
//     0) and CI asserts it. The acceptance gate: mixed read p99 within
//     2x of the read-only p99.
//   - apply_seq / apply_sharded: the same unconditional update batch
//     through ApplyAll at threads=1 vs threads=4. The run of consecutive
//     updates is sliced ONCE, every slice applies the whole run on the
//     pool, and slices stream back in shard order — the slice copy
//     amortizes over the run, so the fan-out wins once real cores back
//     the pool. The JSON records hardware_concurrency: on a single-core
//     host the sharded sample can only show the slicing overhead, and
//     the speedup comparison is meaningful only at hw >= 4.
//   - server_batch: WorldServer::ExecuteAll throughput over one session
//     per backend under a mixed snapshot-read/update request batch.
//   - snapshot_pin: Snapshot() pin+teardown latency at three FIXED data
//     scales (1000/3000/10000 census rows, deliberately independent of
//     MAYWSD_SCALE). The COW pin is O(relations), not O(data): the
//     harness itself exits nonzero if the largest scale's pin p50
//     exceeds 1.5x the smallest scale's (plus a 0.02 ms noise floor) on
//     any backend, and CI's bench smoke re-asserts the section exists.
//
// Usage: fig_serving [--json PATH] — writes BENCH_fig_serving.json for
// CI. MAYWSD_SCALE scales the relation sizes as in the other harnesses.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "bench/bench_util.h"
#include "common/timer.h"
#include "rel/update.h"
#include "server/world_server.h"

namespace {

using namespace maywsd;
using rel::CmpOp;
using rel::Predicate;
using rel::UpdateOp;

constexpr int kReaderThreads = 4;
constexpr int kReadsPerThread = 400;
constexpr int kSnapshotRefresh = 16;  // reads served per pinned snapshot

struct Sample {
  std::string phase;
  const char* backend = "wsdt";
  int threads = 1;
  size_t rows = 0;  // data scale of the phase's store (0 = phase default)
  size_t ops = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double throughput = 0.0;       // ops/second
  uint64_t blocked_waits = 0;    // snapshot reads that waited on a writer
  uint64_t sharded_applies = 0;  // updates that took the sharded path
};

void WriteJson(const char* path, const std::vector<Sample>& samples) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"figure\": \"fig_serving\",\n"
               "  \"hardware_concurrency\": %u,\n  \"samples\": [\n",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"phase\": \"%s\", \"backend\": \"%s\", \"threads\": %d, "
        "\"rows\": %zu, "
        "\"ops\": %zu, \"seconds\": %.6f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"throughput\": %.1f, \"blocked_waits\": %llu, "
        "\"sharded_applies\": %llu}%s\n",
        s.phase.c_str(), s.backend, s.threads, s.rows, s.ops, s.seconds,
        s.p50_ms,
        s.p99_ms, s.throughput,
        static_cast<unsigned long long>(s.blocked_waits),
        static_cast<unsigned long long>(s.sharded_applies),
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// The writer's update: rewrite FERTIL on the younger half of the
/// relation, alternating the value so every apply changes the store.
UpdateOp WriterOp(int k) {
  return UpdateOp::ModifyWhere(
      "R", Predicate::Cmp("AGE", CmpOp::kLt, rel::Value::Int(45)),
      {{"FERTIL", rel::Value::Int(k % 13)}});
}

/// Runs the reader fleet against `session`; a writer loops WriterOp when
/// `with_writer`. Returns the phase's Sample (latencies are per answer
/// read off the pinned snapshot; snapshot refreshes count toward wall
/// clock / throughput but not latency).
Sample ReadPhase(const api::Session& session, api::Session& writable,
                 const char* backend, bool with_writer) {
  std::vector<std::vector<double>> latencies(kReaderThreads);
  std::atomic<uint64_t> blocked{0};
  std::atomic<bool> stop{false};
  Timer wall;

  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int r = 0; r < kReaderThreads; ++r) {
    readers.emplace_back([&session, &latencies, &blocked, r] {
      std::optional<api::Snapshot> snap;
      latencies[r].reserve(kReadsPerThread);
      for (int i = 0; i < kReadsPerThread; ++i) {
        if (i % kSnapshotRefresh == 0) {
          if (snap.has_value()) {
            blocked.fetch_add(snap->Stats().reader_blocked_waits);
          }
          snap.emplace(session.Snapshot());
        }
        Timer t;
        auto rows = snap->PossibleTuples("R");
        latencies[r].push_back(t.Millis());
        if (!rows.ok()) {
          std::fprintf(stderr, "read failed: %s\n",
                       rows.status().ToString().c_str());
          std::exit(1);
        }
      }
      blocked.fetch_add(snap->Stats().reader_blocked_waits);
    });
  }
  std::thread writer;
  if (with_writer) {
    writer = std::thread([&writable, &stop] {
      for (int k = 0; !stop.load(std::memory_order_acquire); ++k) {
        Status st = writable.Apply(WriterOp(k));
        if (!st.ok()) {
          std::fprintf(stderr, "apply failed: %s\n", st.ToString().c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();

  Sample s;
  s.phase = with_writer ? "mixed" : "read_only";
  s.backend = backend;
  s.threads = kReaderThreads;
  s.seconds = wall.Seconds();
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  s.ops = all.size();
  s.p50_ms = Percentile(all, 0.50);
  s.p99_ms = Percentile(all, 0.99);
  s.throughput = static_cast<double>(s.ops) / s.seconds;
  s.blocked_waits = blocked.load();
  return s;
}

/// The unconditional update batch both apply phases run: one long run of
/// same-relation modifies and narrow deletes, so the sharded path slices
/// once and amortizes the copy across all 16 ops.
std::vector<UpdateOp> ApplyBatch() {
  std::vector<UpdateOp> ops;
  for (int k = 0; k < 16; ++k) {
    if (k % 4 == 3) {
      ops.push_back(UpdateOp::DeleteWhere(
          "R", Predicate::Cmp("AGE", CmpOp::kEq, rel::Value::Int(90 - k))));
    } else {
      ops.push_back(UpdateOp::ModifyWhere(
          "R", Predicate::Cmp("AGE", CmpOp::kGe, rel::Value::Int(k % 60)),
          {{"FERTIL", rel::Value::Int(k % 13)}}));
    }
  }
  return ops;
}

Sample ApplyPhase(const core::Wsdt& wsdt, api::BackendKind kind,
                  const char* backend, int threads) {
  auto session_or =
      api::Session::Open(kind, wsdt, {.threads = threads, .cache = true});
  if (!session_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 session_or.status().ToString().c_str());
    std::exit(1);
  }
  api::Session session = std::move(session_or).value();
  std::vector<UpdateOp> batch = ApplyBatch();
  Timer wall;
  Status st = session.ApplyAll(batch);
  double seconds = wall.Seconds();
  if (!st.ok()) {
    std::fprintf(stderr, "ApplyAll failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  Sample s;
  s.phase = threads > 1 ? "apply_sharded" : "apply_seq";
  s.backend = backend;
  s.threads = threads;
  s.ops = batch.size();
  s.seconds = seconds;
  s.throughput = static_cast<double>(s.ops) / seconds;
  s.sharded_applies = session.Stats().sharded_applies;
  return s;
}

/// Snapshot pin+teardown latency over a store of `rows` census rows. The
/// pin is a copy-on-write clone — O(relations) handle copies, no data —
/// so the sample must not move as `rows` grows; main() enforces that.
Sample SnapshotPinPhase(api::BackendKind kind, const char* backend,
                        const core::Wsdt& wsdt, size_t rows) {
  constexpr int kPins = 128;
  auto session_or = api::Session::Open(kind, wsdt);
  if (!session_or.ok()) {
    std::fprintf(stderr, "open %s failed: %s\n", backend,
                 session_or.status().ToString().c_str());
    std::exit(1);
  }
  api::Session session = std::move(session_or).value();
  {
    // Warm-up: the first read may force shared lazy state; pins after it
    // measure the steady-state clone cost only.
    api::Snapshot warm = session.Snapshot();
    if (!warm.PossibleTuples("R").ok()) std::exit(1);
  }
  std::vector<double> latencies;
  latencies.reserve(kPins);
  Timer wall;
  for (int i = 0; i < kPins; ++i) {
    Timer t;
    {
      api::Snapshot snapshot = session.Snapshot();
      (void)snapshot;
    }
    latencies.push_back(t.Millis());
  }
  Sample s;
  s.phase = "snapshot_pin";
  s.backend = backend;
  s.threads = 1;
  s.rows = rows;
  s.ops = latencies.size();
  s.seconds = wall.Seconds();
  s.p50_ms = Percentile(latencies, 0.50);
  s.p99_ms = Percentile(latencies, 0.99);
  s.throughput = static_cast<double>(s.ops) / s.seconds;
  return s;
}

/// WorldServer::ExecuteAll throughput: one session per backend, a mixed
/// request batch (snapshot reads, direct reads, no-op deletes).
Sample ServerBatchPhase(const rel::Relation& base) {
  server::WorldServer server;
  const char* backends[] = {"wsd", "wsdt", "uniform", "urel"};
  for (const char* b : backends) {
    server::Request open;
    open.kind = server::Request::Kind::kOpenSession;
    open.session = b;
    open.backend = *api::ParseBackendKind(b);
    server.Execute(open);
    server::Request reg;
    reg.kind = server::Request::Kind::kRegister;
    reg.session = b;
    reg.relation = base;
    server.Execute(reg);
  }
  std::vector<server::Request> batch;
  for (int i = 0; i < 256; ++i) {
    server::Request req;
    req.session = backends[i % 4];
    req.target = "R";
    switch (i % 3) {
      case 0:
        req.kind = server::Request::Kind::kSnapshotRead;
        break;
      case 1:
        req.kind = server::Request::Kind::kApply;
        req.update = UpdateOp::DeleteWhere(
            "R", Predicate::Cmp("AGE", CmpOp::kLt, rel::Value::Int(0)));
        break;
      default:
        req.kind = server::Request::Kind::kPossible;
        break;
    }
    batch.push_back(std::move(req));
  }
  Timer wall;
  std::vector<server::Response> responses = server.ExecuteAll(batch);
  double seconds = wall.Seconds();
  for (const server::Response& r : responses) {
    if (!r.status.ok()) {
      std::fprintf(stderr, "server request failed: %s\n",
                   r.status.ToString().c_str());
      std::exit(1);
    }
  }
  Sample s;
  s.phase = "server_batch";
  s.backend = "all";
  s.threads = static_cast<int>(std::thread::hardware_concurrency());
  s.ops = batch.size();
  s.seconds = seconds;
  s.throughput = static_cast<double>(s.ops) / seconds;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const census::CensusSchema schema = census::CensusSchema::Standard();
  const size_t read_rows =
      static_cast<size_t>(2000 * maywsd::bench::ScaleFactor());
  const size_t apply_rows =
      static_cast<size_t>(10000 * maywsd::bench::ScaleFactor());
  core::Wsdt read_wsdt = bench::MakeCensusWsdt(schema, read_rows, 0.001);
  core::Wsdt apply_wsdt = bench::MakeCensusWsdt(schema, apply_rows, 0.001);

  std::vector<Sample> samples;
  const char* backends[] = {"wsd", "wsdt", "uniform", "urel"};
  for (const char* backend : backends) {
    api::BackendKind kind = *api::ParseBackendKind(backend);

    auto session_or = api::Session::Open(kind, read_wsdt);
    if (!session_or.ok()) {
      std::fprintf(stderr, "open %s failed: %s\n", backend,
                   session_or.status().ToString().c_str());
      return 1;
    }
    api::Session session = std::move(session_or).value();
    for (bool with_writer : {false, true}) {
      Sample s = ReadPhase(session, session, backend, with_writer);
      std::printf("%-13s %-8s ops=%-5zu p50=%.3fms p99=%.3fms "
                  "%.0f reads/s blocked=%llu\n",
                  s.phase.c_str(), backend, s.ops, s.p50_ms, s.p99_ms,
                  s.throughput,
                  static_cast<unsigned long long>(s.blocked_waits));
      samples.push_back(std::move(s));
    }

    for (int threads : {1, 4}) {
      Sample s = ApplyPhase(apply_wsdt, kind, backend, threads);
      std::printf("%-13s %-8s threads=%d ops=%zu %.3fs sharded=%llu\n",
                  s.phase.c_str(), backend, threads, s.ops, s.seconds,
                  static_cast<unsigned long long>(s.sharded_applies));
      samples.push_back(std::move(s));
    }
  }

  // snapshot_pin: fixed scales so the flatness gate means the same thing
  // at every MAYWSD_SCALE. A 10x data sweep must leave pin p50 flat.
  const size_t pin_scales[] = {1000, 3000, 10000};
  std::vector<core::Wsdt> pin_stores;
  for (size_t rows : pin_scales) {
    pin_stores.push_back(bench::MakeCensusWsdt(schema, rows, 0.001));
  }
  bool pin_flat = true;
  for (const char* backend : backends) {
    api::BackendKind kind = *api::ParseBackendKind(backend);
    double smallest_p50 = 0.0;
    for (size_t i = 0; i < pin_stores.size(); ++i) {
      Sample s =
          SnapshotPinPhase(kind, backend, pin_stores[i], pin_scales[i]);
      std::printf("%-13s %-8s rows=%-6zu p50=%.4fms p99=%.4fms\n",
                  s.phase.c_str(), backend, s.rows, s.p50_ms, s.p99_ms);
      if (i == 0) smallest_p50 = s.p50_ms;
      // O(relations), not O(data): allow 1.5x plus a noise floor.
      if (i + 1 == pin_stores.size() &&
          s.p50_ms > smallest_p50 * 1.5 + 0.02) {
        std::fprintf(stderr,
                     "snapshot pin p50 grew with data on %s: "
                     "%.4fms at %zu rows vs %.4fms at %zu rows\n",
                     backend, s.p50_ms, pin_scales[i], smallest_p50,
                     pin_scales[0]);
        pin_flat = false;
      }
      samples.push_back(std::move(s));
    }
  }

  rel::Relation base =
      census::GenerateCensus(schema, read_rows, /*seed=*/0xC0FFEE ^ read_rows);
  Sample sb = ServerBatchPhase(base);
  std::printf("%-13s %-8s ops=%zu %.3fs %.0f req/s\n", sb.phase.c_str(),
              sb.backend, sb.ops, sb.seconds, sb.throughput);
  samples.push_back(std::move(sb));

  if (json_path != nullptr) WriteJson(json_path, samples);
  return pin_flat ? 0 : 1;  // JSON is written either way, for forensics
}
