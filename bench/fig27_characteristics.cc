// Figure 27: UWSDT characteristics for the largest configured size —
// number of components (#comp), components with more than one placeholder
// (#comp>1), component-relation size |C| and template size |R|, after the
// chase and after each of the six queries of Figure 29.
//
// Expected shape (paper, 12.5M tuples): #comp grows linearly with density;
// the chase merges ~1.7% of components at 0.1%; query answers stay close to
// one world's size and queries merge far fewer components than the chase.

#include <cstdio>

#include "api/session.h"
#include "bench/bench_util.h"

int main() {
  using namespace maywsd;
  census::CensusSchema schema = census::CensusSchema::Standard();
  size_t rows = bench::SizeTicks().back();

  std::printf("# Figure 27: UWSDT characteristics for %zu tuples\n", rows);
  std::printf("%-14s %-10s %12s %12s %12s %12s\n", "stage", "density",
              "#comp", "#comp>1", "|C|", "|R|");
  for (double density : bench::Densities()) {
    census::NoiseReport report;
    core::Wsdt wsdt = bench::MakeCensusWsdt(schema, rows, density, &report);
    std::printf("%-14s %-10s %12zu %12s %12s %12zu\n", "Initial",
                bench::DensityLabel(density), report.placeholders, "-", "-",
                rows);
    bench::ChaseCensus(wsdt);
    core::WsdtStats stats = wsdt.ComputeStats();
    std::printf("%-14s %-10s %12zu %12zu %12zu %12zu\n", "After chase",
                bench::DensityLabel(density), stats.num_components,
                stats.num_components_multi, stats.c_size,
                stats.template_rows);
    for (int q = 1; q <= 6; ++q) {
      // Each query runs on a session over a fresh copy of the chased
      // representation so the reported characteristics are those of this
      // answer alone.
      api::Session session = api::Session::Open(wsdt);
      std::string out = "Q" + std::to_string(q);
      Status st = session.Run(census::CensusQuery(q, "R"), out);
      if (!st.ok()) {
        std::fprintf(stderr, "Q%d failed: %s\n", q, st.ToString().c_str());
        return 1;
      }
      auto qs = session.wsdt()->StatsForRelation(out);
      if (!qs.ok()) return 1;
      std::printf("%-14s %-10s %12zu %12zu %12zu %12zu\n",
                  ("After " + out).c_str(), bench::DensityLabel(density),
                  qs->num_components, qs->num_components_multi, qs->c_size,
                  qs->template_rows);
    }
    std::printf("\n");
  }
  return 0;
}
