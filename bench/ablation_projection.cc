// Ablation: compose-based projection (Figure 9) vs. the "exists column"
// projection (Section 4 Discussion).
//
// Input shaped like correlated query results: the kept attribute of all n
// tuples shares one component while each dropped attribute carries its own
// conditional-presence (⊥) component. The Figure 9 algorithm composes all
// of them — 2^n local worlds — while the exists-column variant adds one
// presence field per tuple and stays linear. This quantifies the paper's
// claim that "with this addition, the projection can also be implemented
// in polynomial time".

#include <cstdio>

#include "common/timer.h"
#include "core/wsd_algebra.h"

using namespace maywsd;
using core::Component;
using core::FieldKey;
using core::Wsd;

namespace {

Wsd MakeInput(int n) {
  Wsd wsd;
  (void)wsd.AddRelation("R", rel::Schema::FromNames({"A", "B"}),
                        static_cast<core::TupleId>(n));
  std::vector<FieldKey> a_fields;
  for (int t = 0; t < n; ++t) a_fields.emplace_back("R", t, "A");
  Component shared(a_fields);
  std::vector<rel::Value> row0, row1;
  for (int t = 0; t < n; ++t) {
    row0.push_back(rel::Value::Int(t));
    row1.push_back(rel::Value::Int(t + 100));
  }
  shared.AddWorld(row0, 0.5);
  shared.AddWorld(row1, 0.5);
  (void)wsd.AddComponent(std::move(shared));
  for (int t = 0; t < n; ++t) {
    Component c({FieldKey("R", t, "B")});
    c.AddWorld({rel::Value::Int(7)}, 0.5);
    c.AddWorld({rel::Value::Bottom()}, 0.5);
    (void)wsd.AddComponent(std::move(c));
  }
  return wsd;
}

size_t TotalCells(const Wsd& wsd) {
  size_t cells = 0;
  for (size_t i : wsd.LiveComponents()) {
    cells += wsd.component(i).NumFields() * wsd.component(i).NumWorlds();
  }
  return cells;
}

}  // namespace

int main() {
  std::printf(
      "# Ablation: projection via composition (Figure 9) vs exists "
      "column\n");
  std::printf("%8s %14s %14s %14s %14s\n", "tuples", "compose_sec",
              "compose_cells", "exists_sec", "exists_cells");
  for (int n = 2; n <= 18; n += 2) {
    Wsd compose_wsd = MakeInput(n);
    Timer t1;
    if (!core::WsdProject(compose_wsd, "R", "P", {"A"}).ok()) return 1;
    double compose_sec = t1.Seconds();
    size_t compose_cells = TotalCells(compose_wsd);

    Wsd exists_wsd = MakeInput(n);
    Timer t2;
    if (!core::WsdProjectExists(exists_wsd, "R", "P", {"A"}).ok()) return 1;
    double exists_sec = t2.Seconds();
    size_t exists_cells = TotalCells(exists_wsd);

    std::printf("%8d %14.5f %14zu %14.5f %14zu\n", n, compose_sec,
                compose_cells, exists_sec, exists_cells);
  }
  return 0;
}
