// Shared configuration for the figure-regeneration harnesses.
//
// The paper's IPUMS experiments run at 0.1M–12.5M tuples; the default here
// is 1/100 of those ticks (1k–125k) so the whole bench directory finishes
// in minutes on a laptop. Set MAYWSD_SCALE=<multiplier> to scale the sizes
// up (e.g. MAYWSD_SCALE=10 runs 10k–1.25M).

#ifndef MAYWSD_BENCH_BENCH_UTIL_H_
#define MAYWSD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "census/dependencies.h"
#include "census/ipums.h"
#include "census/noise.h"
#include "census/queries.h"
#include "common/timer.h"
#include "core/wsdt.h"
#include "core/wsdt_algebra.h"
#include "core/wsdt_chase.h"

namespace maywsd::bench {

/// Multiplier from MAYWSD_SCALE (default 1).
inline double ScaleFactor() {
  const char* env = std::getenv("MAYWSD_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

/// The paper's size ticks (in tuples), scaled 1/100 by default:
/// 0.1, 0.5, 0.75, 1, 5, 7.5, 10, 12.5 million → 1k … 125k.
inline std::vector<size_t> SizeTicks() {
  double s = ScaleFactor();
  std::vector<size_t> out;
  for (double m : {0.1, 0.5, 0.75, 1.0, 5.0, 7.5, 10.0, 12.5}) {
    out.push_back(static_cast<size_t>(m * 1e4 * s));
  }
  return out;
}

/// The paper's placeholder densities (fractions, not percent).
inline std::vector<double> Densities() {
  return {0.00005, 0.0001, 0.0005, 0.001};
}

inline const char* DensityLabel(double d) {
  if (d == 0.0) return "0%";
  if (d == 0.00005) return "0.005%";
  if (d == 0.0001) return "0.01%";
  if (d == 0.0005) return "0.05%";
  if (d == 0.001) return "0.1%";
  return "?";
}

/// Builds the noisy census WSDT for one experimental cell. Deterministic.
inline core::Wsdt MakeCensusWsdt(const census::CensusSchema& schema,
                                 size_t rows, double density,
                                 census::NoiseReport* report = nullptr) {
  rel::Relation base =
      census::GenerateCensus(schema, rows, /*seed=*/0xC0FFEE ^ rows);
  auto wsdt = census::MakeNoisyWsdt(base, schema, density,
                                    /*seed=*/0xBEEF ^ rows, report);
  if (!wsdt.ok()) {
    std::fprintf(stderr, "noise injection failed: %s\n",
                 wsdt.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(wsdt).value();
}

/// Chases the 12 Figure 25 dependencies, aborting on error.
inline void ChaseCensus(core::Wsdt& wsdt) {
  Status st = core::WsdtChase(wsdt, census::CensusDependencies("R"));
  if (!st.ok()) {
    std::fprintf(stderr, "chase failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace maywsd::bench

#endif  // MAYWSD_BENCH_BENCH_UTIL_H_
