// Microbenchmarks of the core WSD primitives (google-benchmark):
// compose, compress, prime factorization (the DESIGN.md ablation for the
// exact minimal-separator search), confidence computation, and the
// per-tuple EGD chase step.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/chase.h"
#include "core/confidence.h"
#include "core/normalize.h"
#include "core/orset.h"
#include "core/wsdt_chase.h"

namespace maywsd::core {
namespace {

rel::Value I(int64_t v) { return rel::Value::Int(v); }

Component RandomComponent(size_t fields, size_t worlds, uint64_t seed) {
  std::vector<FieldKey> fks;
  for (size_t i = 0; i < fields; ++i) {
    fks.emplace_back("R", static_cast<TupleId>(i), "A");
  }
  Component c(std::move(fks));
  Rng rng(seed);
  std::vector<rel::Value> row(fields);
  for (size_t w = 0; w < worlds; ++w) {
    for (size_t f = 0; f < fields; ++f) {
      row[f] = I(static_cast<int64_t>(rng.Uniform(4)));
    }
    c.AddWorld(row, 1.0 / static_cast<double>(worlds));
  }
  return c;
}

void BM_Compose(benchmark::State& state) {
  Component a = RandomComponent(2, static_cast<size_t>(state.range(0)), 1);
  Component b = RandomComponent(2, static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    Component c = Component::Compose(a, b);
    benchmark::DoNotOptimize(c.NumWorlds());
  }
}
BENCHMARK(BM_Compose)->Arg(4)->Arg(16)->Arg(64);

void BM_Compress(benchmark::State& state) {
  Component a = RandomComponent(2, static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    Component copy = a;
    copy.Compress();
    benchmark::DoNotOptimize(copy.NumWorlds());
  }
}
BENCHMARK(BM_Compress)->Arg(16)->Arg(256)->Arg(4096);

/// Factorization cost vs. arity: a fully-independent product of k binary
/// columns (2^k rows) — the worst case where every split succeeds.
void BM_FactorIndependent(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  std::vector<FieldKey> fks;
  for (size_t i = 0; i < k; ++i) {
    fks.emplace_back("R", static_cast<TupleId>(i), "A");
  }
  Component c(std::move(fks));
  size_t rows = 1u << k;
  std::vector<rel::Value> row(k);
  for (size_t m = 0; m < rows; ++m) {
    for (size_t i = 0; i < k; ++i) row[i] = I((m >> i) & 1);
    c.AddWorld(row, 1.0 / static_cast<double>(rows));
  }
  for (auto _ : state) {
    auto parts = FactorComponent(c);
    benchmark::DoNotOptimize(parts.size());
  }
}
BENCHMARK(BM_FactorIndependent)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

/// Factorization of a prime (diagonal) component: every separator test
/// fails — the exponential enumeration in full.
void BM_FactorPrime(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  std::vector<FieldKey> fks;
  for (size_t i = 0; i < k; ++i) {
    fks.emplace_back("R", static_cast<TupleId>(i), "A");
  }
  Component c(std::move(fks));
  for (int64_t v = 0; v < 4; ++v) {
    std::vector<rel::Value> row(k, I(v));
    c.AddWorld(row, 0.25);
  }
  for (auto _ : state) {
    auto parts = FactorComponent(c);
    benchmark::DoNotOptimize(parts.size());
  }
}
BENCHMARK(BM_FactorPrime)->Arg(4)->Arg(8)->Arg(12);

void BM_TupleConfidence(benchmark::State& state) {
  // Or-set relation with `range` tuples, one or-set per tuple.
  size_t n = static_cast<size_t>(state.range(0));
  OrSetRelation orset(rel::Schema::FromNames({"A", "B"}), "R");
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    orset
        .AppendRow({OrSetField({I(static_cast<int64_t>(i % 10)),
                                I(static_cast<int64_t>((i + 1) % 10))}),
                    OrSetField(I(static_cast<int64_t>(i % 5)))})
        .ok();
  }
  Wsd wsd = orset.ToWsd().value();
  std::vector<rel::Value> probe{I(3), I(3)};
  for (auto _ : state) {
    auto conf = TupleConfidence(wsd, "R", probe);
    benchmark::DoNotOptimize(conf.value());
  }
}
BENCHMARK(BM_TupleConfidence)->Arg(100)->Arg(1000)->Arg(10000);

void BM_WsdtChaseEgdRow(benchmark::State& state) {
  // Chase cost per template row on an all-certain relation (the skip path
  // that dominates at census scale).
  size_t n = static_cast<size_t>(state.range(0));
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A", "B"}), "R");
  for (size_t i = 0; i < n; ++i) {
    tmpl.AppendRow({I(static_cast<int64_t>(i % 7)),
                    I(static_cast<int64_t>(i % 3))});
  }
  wsdt.AddTemplateRelation(std::move(tmpl)).ok();
  Egd egd;
  egd.relation = "R";
  egd.premises = {{"A", rel::CmpOp::kEq, I(1)}};
  egd.conclusion = {"B", rel::CmpOp::kNe, I(9)};
  for (auto _ : state) {
    Wsdt copy = wsdt;
    benchmark::DoNotOptimize(WsdtChaseEgd(copy, egd).ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_WsdtChaseEgdRow)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace maywsd::core

BENCHMARK_MAIN();
