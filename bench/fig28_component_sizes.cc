// Figure 28: distribution of component sizes (placeholders per component)
// of the chased relations, for several sizes and densities.
//
// Expected shape: the count drops off very quickly with size — almost all
// fields stay independent, a small number of pairs (and very few larger
// groups) are merged by the chase.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace maywsd;
  census::CensusSchema schema = census::CensusSchema::Standard();
  std::vector<size_t> ticks = bench::SizeTicks();
  // The paper reports the 5M, 10M and 12.5M rows; use the top three ticks.
  std::vector<size_t> sizes(ticks.end() - 3, ticks.end());

  std::printf("# Figure 28: placeholders per component after the chase\n");
  std::printf("%10s %10s %10s %10s %10s %12s\n", "tuples", "density",
              "size 1", "size 2", "size 3", "size 4 and more");
  for (size_t rows : sizes) {
    for (double density : bench::Densities()) {
      core::Wsdt wsdt = bench::MakeCensusWsdt(schema, rows, density);
      bench::ChaseCensus(wsdt);
      std::vector<size_t> hist = wsdt.ComponentSizeHistogram();
      size_t s1 = hist.size() > 1 ? hist[1] : 0;
      size_t s2 = hist.size() > 2 ? hist[2] : 0;
      size_t s3 = hist.size() > 3 ? hist[3] : 0;
      size_t s4 = 0;
      for (size_t i = 4; i < hist.size(); ++i) s4 += hist[i];
      std::printf("%10zu %10s %10zu %10zu %10zu %12zu\n", rows,
                  bench::DensityLabel(density), s1, s2, s3, s4);
    }
  }
  return 0;
}
