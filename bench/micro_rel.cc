// Microbenchmarks of the relational-engine substrate (google-benchmark):
// scan+selection, projection with dedup, hash join — the operations the
// UWSDT rewritings bottom out in (the paper's "lion's share of the
// processing time is taken by the templates").

#include <benchmark/benchmark.h>

#include "census/ipums.h"
#include "census/queries.h"
#include "rel/eval.h"
#include "rel/optimizer.h"

namespace maywsd::rel {
namespace {

Database MakeDb(size_t rows) {
  Database db;
  db.PutRelation(census::GenerateCensus(census::CensusSchema::Standard(),
                                        rows, /*seed=*/123));
  return db;
}

void BM_SelectScan(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Plan q = Plan::Select(
      Predicate::Cmp("YEARSCH", CmpOp::kEq, Value::Int(17)), Plan::Scan("R"));
  for (auto _ : state) {
    auto out = Evaluate(q, db);
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SelectScan)->Arg(10000)->Arg(100000);

void BM_ProjectDedup(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Plan q = Plan::Project({"POWSTATE", "POB"}, Plan::Scan("R"));
  for (auto _ : state) {
    auto out = Evaluate(q, db);
    benchmark::DoNotOptimize(out->NumRows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProjectDedup)->Arg(10000)->Arg(100000);

void BM_Q5JoinPipeline(benchmark::State& state) {
  Database db = MakeDb(static_cast<size_t>(state.range(0)));
  Plan q = census::CensusQuery(5, "R");
  for (auto _ : state) {
    auto out = Evaluate(q, db);
    benchmark::DoNotOptimize(out->NumRows());
  }
}
BENCHMARK(BM_Q5JoinPipeline)->Arg(10000)->Arg(50000);

void BM_OptimizerRewrite(benchmark::State& state) {
  Database db = MakeDb(1000);
  Plan q = census::CensusQuery(5, "R");
  for (auto _ : state) {
    auto opt = Optimize(q, db);
    benchmark::DoNotOptimize(opt->NodeCount());
  }
}
BENCHMARK(BM_OptimizerRewrite);

}  // namespace
}  // namespace maywsd::rel

BENCHMARK_MAIN();
