// Composition cost of the interned component store: product chains,
// difference chains, and guarded update batches, through api::Session.
//
// The paper's 10^10^6-worlds headline rests on never materializing
// composed world sets. This harness measures what a workload actually
// forces, via the SessionStats snapshot of the store counters:
//   - product-chain: Q_k = R_1 × … × R_k over uncertain relations. Every
//     field copy is an O(1) ext-dup handle share, so the per-step store
//     cost (forced evaluations, materialized cells) must stay constant in
//     k — the harness EXITS NON-ZERO if it grows, making bench-smoke a
//     regression gate for the lazy-composition invariant.
//   - difference-chain: P −= S_i over uncertain attributes. Each step
//     records compose nodes and forces only the worlds the ⊥-rewrite
//     touches; reported so the growth curve is visible in CI artifacts.
//   - guarded-batch: Session::ApplyAll of N updates sharing one
//     structurally equal world condition — asserts the batch materializes
//     the guard once and serves the other N−1 from the cache, and compares
//     wall clock against N sequential Apply calls.
//
// Usage: fig_compose [--json PATH] — also writes the measurements as a
// flat JSON document (consumed by CI as BENCH_fig_compose.json).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench/bench_util.h"
#include "core/wsd.h"
#include "rel/update.h"

namespace {

using namespace maywsd;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::UpdateOp;

struct Sample {
  std::string workload;
  size_t steps = 0;
  double seconds = 0.0;
  // Store-counter deltas across the workload (process-global counters,
  // snapshotted through SessionStats before/after).
  uint64_t compose_nodes = 0;
  uint64_t forced_evals = 0;
  int64_t cells = 0;  // live-cell delta; can be negative after drops
  uint64_t peak_cells = 0;
  // Guard sharing (guarded-batch only).
  uint64_t guard_materializations = 0;
  uint64_t guard_shares = 0;
};

void WriteJson(const char* path, const std::vector<Sample>& samples) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"figure\": \"fig_compose\",\n  \"samples\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"steps\": %zu, \"seconds\": %.6f, "
        "\"compose_nodes\": %llu, \"forced_evals\": %llu, \"cells\": %lld, "
        "\"peak_cells\": %llu, \"guard_materializations\": %llu, "
        "\"guard_shares\": %llu}%s\n",
        s.workload.c_str(), s.steps, s.seconds,
        static_cast<unsigned long long>(s.compose_nodes),
        static_cast<unsigned long long>(s.forced_evals),
        static_cast<long long>(s.cells),
        static_cast<unsigned long long>(s.peak_cells),
        static_cast<unsigned long long>(s.guard_materializations),
        static_cast<unsigned long long>(s.guard_shares),
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// An uncertain single-tuple relation R<i> with attributes A<i>, B<i>,
/// each an independent `worlds`-way component. Components above the
/// store's eager-materialization threshold (64 cells) stay lazy handles;
/// two-world components are deliberately eager, so the chains pick their
/// factor size to measure the regime they care about.
Status AddFactor(core::Wsd& wsd, size_t i, size_t worlds) {
  std::string name = "R" + std::to_string(i);
  std::string a = "A" + std::to_string(i);
  std::string b = "B" + std::to_string(i);
  MAYWSD_RETURN_IF_ERROR(
      wsd.AddRelation(name, rel::Schema::FromNames({a, b}), 1));
  for (const std::string& attr : {a, b}) {
    core::Component c({core::FieldKey(name, 0, attr)});
    for (size_t w = 0; w < worlds; ++w) {
      c.AddWorld({rel::Value::Int(static_cast<int64_t>(w))},
                 1.0 / static_cast<double>(worlds));
    }
    MAYWSD_RETURN_IF_ERROR(wsd.AddComponent(std::move(c)));
  }
  return Status::Ok();
}

struct Delta {
  api::SessionStats before;
  void Start(const api::Session& s) { before = s.Stats(); }
  void Finish(const api::Session& s, Sample& out) {
    api::SessionStats after = s.Stats();
    out.compose_nodes = after.store_compose_nodes - before.store_compose_nodes;
    out.forced_evals = after.store_forced_evals - before.store_forced_evals;
    out.cells = static_cast<int64_t>(after.store_live_cells) -
                static_cast<int64_t>(before.store_live_cells);
    out.peak_cells = after.store_peak_cells - before.store_peak_cells;
    out.guard_materializations =
        after.guard_materializations - before.guard_materializations;
    out.guard_shares = after.guard_shares - before.guard_shares;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  std::vector<Sample> samples;
  auto report = [&](Sample s) {
    std::printf("%-16s %6zu %10.6f %10llu %10llu %10lld %10llu\n",
                s.workload.c_str(), s.steps, s.seconds,
                static_cast<unsigned long long>(s.compose_nodes),
                static_cast<unsigned long long>(s.forced_evals),
                static_cast<long long>(s.cells),
                static_cast<unsigned long long>(s.peak_cells));
    samples.push_back(std::move(s));
  };
  std::printf("%-16s %6s %10s %10s %10s %10s %10s\n", "workload", "steps",
              "seconds", "compose", "forced", "cells", "peak");

  // -- Product chain: representation cost must be O(1) per step. -----------
  //
  // Each factor's attribute is a 256-way component (above the store's
  // eager threshold), so Q_16 represents 256^32 ≈ 10^77 worlds. The build
  // itself is pure ext-dup handle shares; the only forcing is scratch
  // cleanup, which materializes each touched component once (2 per step,
  // independent of chain length), and the cells that survive per step are
  // the factor's own payload — flat in k. An eager store copies every
  // factor's payload once per downstream product instead, so its per-step
  // cell cost grows linearly with chain length and this gate trips.
  const size_t kChainWorlds = 256;
  std::vector<uint64_t> forced_per_chain;
  std::vector<int64_t> cells_per_step;
  for (size_t k : {4, 8, 16}) {
    core::Wsd wsd;
    for (size_t i = 0; i < k; ++i) {
      if (!AddFactor(wsd, i, kChainWorlds).ok()) return 1;
    }
    api::Session session = api::Session::Open(std::move(wsd));
    Plan plan = Plan::Scan("R0");
    for (size_t i = 1; i < k; ++i) {
      plan = Plan::Product(std::move(plan),
                           Plan::Scan("R" + std::to_string(i)));
    }
    Sample s;
    s.workload = "product-chain";
    s.steps = k - 1;
    Delta d;
    d.Start(session);
    Timer t;
    if (!session.Run(plan, "Q").ok()) {
      std::fprintf(stderr, "product chain k=%zu failed\n", k);
      return 1;
    }
    s.seconds = t.Seconds();
    d.Finish(session, s);
    forced_per_chain.push_back(s.forced_evals);
    cells_per_step.push_back(s.cells / static_cast<int64_t>(s.steps));
    report(std::move(s));
  }
  // The gate: per-step forced evaluations and per-step surviving cells
  // must not grow with chain length. (Lazy: 2 forced per step — one per
  // copied attribute at scratch cleanup — and a flat ~2·worlds cells per
  // step. Eager: cells per step grow linearly in k and the 2× slack
  // trips by k=16.)
  {
    uint64_t forced_ps = forced_per_chain.back() / 15;  // longest chain
    if (forced_ps > 4) {
      std::fprintf(stderr,
                   "FAIL: product chain forced %llu evaluations per step; "
                   "compose cost is no longer O(1) per step\n",
                   static_cast<unsigned long long>(forced_ps));
      return 1;
    }
    if (cells_per_step.back() >
        2 * std::max<int64_t>(cells_per_step.front(), 8)) {
      std::fprintf(stderr,
                   "FAIL: product-chain cells per step grew %lld -> %lld; "
                   "compose cost is no longer O(1) per step\n",
                   static_cast<long long>(cells_per_step.front()),
                   static_cast<long long>(cells_per_step.back()));
      return 1;
    }
  }

  // -- Difference chain: compose nodes recorded, forcing stays local. ------
  //
  // P loses worlds to each uncertain subtrahend; the ⊥-rewrite forces the
  // composed component it mutates, so forced work tracks the worlds the
  // query actually distinguishes — reported for the CI artifact curve.
  for (size_t k : {2, 4, 6}) {
    core::Wsd wsd;
    for (size_t i = 0; i < k + 1; ++i) {
      // Two-world factors: the composed component the ⊥-rewrite forces
      // stays at 2^(k+1) local worlds, small enough to materialize.
      if (!AddFactor(wsd, i, 2).ok()) return 1;
    }
    api::Session session = api::Session::Open(std::move(wsd));
    // Align every factor onto P's schema so difference is well-typed.
    Plan plan = Plan::Scan("R0");
    for (size_t i = 1; i <= k; ++i) {
      Plan s_i = Plan::Rename({{"A" + std::to_string(i), "A0"},
                               {"B" + std::to_string(i), "B0"}},
                              Plan::Scan("R" + std::to_string(i)));
      plan = Plan::Difference(std::move(plan), std::move(s_i));
    }
    Sample s;
    s.workload = "difference-chain";
    s.steps = k;
    Delta d;
    d.Start(session);
    Timer t;
    if (!session.Run(plan, "Q").ok()) {
      std::fprintf(stderr, "difference chain k=%zu failed\n", k);
      return 1;
    }
    s.seconds = t.Seconds();
    d.Finish(session, s);
    report(std::move(s));
  }

  // -- Guarded update batch: one materialization, N−1 shares. --------------
  {
    const size_t kOps = 16;
    census::CensusSchema schema = census::CensusSchema::Standard();
    rel::Relation base =
        census::GenerateCensus(schema, 2000, /*seed=*/0xC0FFEE);
    rel::Relation guard = base;
    guard.set_name("G");

    UpdateOp op_template = UpdateOp::ModifyWhere(
        "R", Predicate::Cmp("SEX", CmpOp::kEq, rel::Value::Int(1)),
        {{"MARITAL", rel::Value::Int(0)}});
    Plan condition = Plan::Select(
        Predicate::Cmp("AGE", CmpOp::kGe, rel::Value::Int(90)),
        Plan::Scan("G"));

    auto run = [&](bool batched, Sample& s) -> bool {
      api::Session session = api::Session::Open(api::BackendKind::kWsdt);
      if (!session.Register(base).ok()) return false;
      if (!session.Register(guard).ok()) return false;
      std::vector<UpdateOp> ops;
      for (size_t i = 0; i < kOps; ++i) {
        ops.push_back(UpdateOp::ModifyWhere(
                          "R",
                          Predicate::Cmp("SEX", CmpOp::kEq, rel::Value::Int(1)),
                          {{"MARITAL", rel::Value::Int(static_cast<int64_t>(
                                           i % 3))}})
                          .When(condition));
      }
      Delta d;
      d.Start(session);
      Timer t;
      if (batched) {
        if (!session.ApplyAll(ops).ok()) return false;
      } else {
        for (const UpdateOp& op : ops) {
          if (!session.Apply(op).ok()) return false;
        }
      }
      s.seconds = t.Seconds();
      d.Finish(session, s);
      return true;
    };

    Sample seq;
    seq.workload = "guarded-seq";
    seq.steps = kOps;
    if (!run(false, seq)) return 1;
    report(std::move(seq));

    Sample batch;
    batch.workload = "guarded-batch";
    batch.steps = kOps;
    if (!run(true, batch)) return 1;
    bool shared = batch.guard_materializations == 1 &&
                  batch.guard_shares == kOps - 1;
    std::printf("%-16s guard: %llu materialized, %llu shared\n",
                batch.workload.c_str(),
                static_cast<unsigned long long>(batch.guard_materializations),
                static_cast<unsigned long long>(batch.guard_shares));
    report(std::move(batch));
    if (!shared) {
      std::fprintf(stderr,
                   "FAIL: guarded batch expected 1 materialization and %zu "
                   "shares\n",
                   kOps - 1);
      return 1;
    }
  }

  if (json_path != nullptr) {
    WriteJson(json_path, samples);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
