// Figure 26: time for chasing the 12 dependencies of Figure 25 on UWSDTs
// of various sizes and densities.
//
// The paper plots chase wall-clock time (log-log) against tuple count for
// densities 0.005%–0.1%; the expected shape is linear growth in both the
// number of tuples and the placeholder density. Absolute numbers differ
// from the paper (in-memory C++ vs. Java-over-PostgreSQL on 2007 hardware);
// the scaling behaviour is the reproduced result.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace maywsd;
  census::CensusSchema schema = census::CensusSchema::Standard();

  std::printf("# Figure 26: chase times for the 12 census dependencies\n");
  std::printf("# rows scaled 1/%.0f of the paper's 0.1M..12.5M ticks\n",
              100.0 / bench::ScaleFactor());
  std::printf("%10s %12s %14s %14s %16s\n", "tuples", "density",
              "placeholders", "chase_sec", "sec_per_1k_tuples");
  for (size_t rows : bench::SizeTicks()) {
    for (double density : bench::Densities()) {
      census::NoiseReport report;
      core::Wsdt wsdt = bench::MakeCensusWsdt(schema, rows, density, &report);
      Timer timer;
      bench::ChaseCensus(wsdt);
      double sec = timer.Seconds();
      std::printf("%10zu %12s %14zu %14.4f %16.6f\n", rows,
                  bench::DensityLabel(density), report.placeholders, sec,
                  sec * 1000.0 / static_cast<double>(rows));
    }
  }
  return 0;
}
