// Ablation: chasing a key constraint (the Section 8 closing remark).
//
// "While chasing key constraints can in theory require the composition of
// all components for a given attribute, this is unlikely to happen in
// practice as it will require the existence of a chain of pairs of
// uncertain key fields that share at least one value."
//
// Setup: a people relation with a near-unique SSN column; a fraction of
// SSN fields become or-sets of neighboring values. Chasing SSN → NAME
// composes a pair of components only when two tuples' possible SSNs
// overlap. We report the chase time and the size of the largest composed
// component as tuples and density grow: the chain blow-up never occurs.

#include <cstdio>

#include "common/rng.h"
#include "common/timer.h"
#include "core/wsdt_chase.h"

using namespace maywsd;
using core::Component;
using core::FieldKey;
using core::Wsdt;

namespace {

Wsdt MakePeople(size_t rows, double density, uint64_t seed) {
  Wsdt wsdt;
  rel::Relation tmpl(
      rel::Schema({rel::Attribute("SSN", rel::AttrType::kInt),
                   rel::Attribute("NAME", rel::AttrType::kInt),
                   rel::Attribute("CITY", rel::AttrType::kInt)}),
      "People");
  Rng rng(seed);
  std::vector<std::pair<size_t, std::vector<int64_t>>> orsets;
  for (size_t r = 0; r < rows; ++r) {
    int64_t ssn = static_cast<int64_t>(r);
    bool noisy = rng.Bernoulli(density);
    if (noisy) {
      // Mis-read digit: the or-set straddles a neighbor's SSN — the case
      // that can force a composition when the neighbor is also uncertain.
      int64_t other = ssn + (rng.Bernoulli(0.5) ? 1 : -1);
      if (other < 0) other = ssn + 1;
      orsets.push_back({r, {ssn, other}});
      tmpl.AppendRow({rel::Value::Question(),
                      rel::Value::Int(static_cast<int64_t>(r % 1000)),
                      rel::Value::Int(static_cast<int64_t>(r % 50))});
    } else {
      tmpl.AppendRow({rel::Value::Int(ssn),
                      rel::Value::Int(static_cast<int64_t>(r % 1000)),
                      rel::Value::Int(static_cast<int64_t>(r % 50))});
    }
  }
  (void)wsdt.AddTemplateRelation(std::move(tmpl));
  for (const auto& [r, values] : orsets) {
    Component c({FieldKey("People", static_cast<core::TupleId>(r), "SSN")});
    for (int64_t v : values) {
      c.AddWorld({rel::Value::Int(v)}, 1.0 / values.size());
    }
    (void)wsdt.AddComponent(std::move(c));
  }
  return wsdt;
}

}  // namespace

int main() {
  std::printf("# Ablation: chasing the key FD SSN -> NAME\n");
  std::printf("%10s %10s %12s %12s %14s %14s\n", "tuples", "density",
              "chase_sec", "#comp", "#comp>1", "max_comp_rows");
  for (size_t rows : {10000ul, 50000ul, 100000ul}) {
    for (double density : {0.0001, 0.001, 0.01}) {
      Wsdt wsdt = MakePeople(rows, density, 0xFEED ^ rows);
      core::Fd key{"People", {"SSN"}, "NAME"};
      Timer t;
      Status st = core::WsdtChaseFd(wsdt, key);
      if (!st.ok()) {
        std::printf("chase failed: %s\n", st.ToString().c_str());
        return 1;
      }
      double sec = t.Seconds();
      size_t multi = 0;
      size_t max_rows = 0;
      size_t comps = 0;
      for (size_t i : wsdt.LiveComponents()) {
        ++comps;
        if (wsdt.component(i).NumFields() > 1) ++multi;
        max_rows = std::max(max_rows, wsdt.component(i).NumWorlds());
      }
      std::printf("%10zu %10.4f %12.4f %12zu %14zu %14zu\n", rows, density,
                  sec, comps, multi, max_rows);
    }
  }
  return 0;
}
