// Update throughput and mixed read/write workloads across the backends,
// through the api::Session facade.
//
// The source paper's scope is representation AND processing; the follow-up
// WSD work treats updates — inserts, deletes, conditional modifies — as
// first-class operations alongside queries. This harness measures, per
// backend:
//   - bulk insert throughput (tuples/second into a census-sized relation),
//   - delete-where and modify-where passes over the whole relation,
//   - a world-conditional modify (exercising the guard lowering; on the
//     uniform backend this is the import→update→export fallback),
//   - a mixed read/write workload — updates interleaved with
//     possible/certain answer reads — with the Session answer cache on and
//     off, reporting the hit counters alongside the wall clock.
//
// Usage: fig_updates [--json PATH] — also writes the measurements as a
// flat JSON document (consumed by CI as BENCH_fig_updates.json).
// MAYWSD_SCALE scales the census sizes as in the other harnesses.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench/bench_util.h"
#include "rel/update.h"

namespace {

using namespace maywsd;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::UpdateOp;

struct Sample {
  std::string workload;
  const char* backend = "wsdt";
  size_t rows = 0;     // relation size at the start of the workload
  size_t ops = 0;      // update operations (or tuples, for insert) applied
  double seconds = 0.0;
  int cache = -1;            // -1 = not applicable
  uint64_t answer_hits = 0;  // Session answer-cache hits (mixed workload)
};

void WriteJson(const char* path, const std::vector<Sample>& samples) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"figure\": \"fig_updates\",\n  \"samples\": [\n");
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"backend\": \"%s\", "
                 "\"rows\": %zu, \"ops\": %zu, \"seconds\": %.6f, "
                 "\"cache\": %d, \"answer_hits\": %llu}%s\n",
                 s.workload.c_str(), s.backend, s.rows, s.ops, s.seconds,
                 s.cache, static_cast<unsigned long long>(s.answer_hits),
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

Result<api::Session> OpenOver(const char* backend, api::SessionOptions opts) {
  MAYWSD_ASSIGN_OR_RETURN(api::BackendKind kind,
                          api::ParseBackendKind(backend));
  return api::Session::Open(kind, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  census::CensusSchema schema = census::CensusSchema::Standard();
  std::vector<Sample> samples;

  // The WSDT, uniform and U-relations stores take the paper-scale ticks;
  // the WSD path materializes one component per field and stays at the
  // smallest tick (the same asymmetry as the fig30 cross-backend section).
  // The urel cell runs unconditional updates natively on the columnar
  // store and pays the one-round-trip fallback only for cond-modify.
  std::vector<size_t> ticks = bench::SizeTicks();
  struct Cell {
    const char* backend;
    size_t rows;
  };
  std::vector<Cell> cells = {{"wsdt", ticks[0]},
                             {"wsdt", ticks[3]},
                             {"uniform", ticks[0]},
                             {"urel", ticks[0]},
                             {"urel", ticks[3]},
                             {"wsd", std::max<size_t>(ticks[0] / 4, 8)}};

  std::printf("%-8s %-10s %10s %8s %12s %10s\n", "backend", "workload",
              "rows", "ops", "seconds", "ops/sec");
  for (const Cell& cell : cells) {
    rel::Relation base = census::GenerateCensus(schema, cell.rows,
                                                /*seed=*/0xC0FFEE ^ cell.rows);
    rel::Relation batch =
        census::GenerateCensus(schema, std::max<size_t>(cell.rows / 10, 1),
                               /*seed=*/0xFEED ^ cell.rows);

    auto report = [&](const std::string& workload, size_t ops, double secs,
                      int cache = -1, uint64_t hits = 0) {
      samples.push_back(
          {workload, cell.backend, cell.rows, ops, secs, cache, hits});
      std::printf("%-8s %-10s %10zu %8zu %12.6f %10.0f%s\n", cell.backend,
                  workload.c_str(), cell.rows, ops, secs,
                  secs > 0 ? static_cast<double>(ops) / secs : 0.0,
                  cache >= 0 ? (cache ? "  [cache on]" : "  [cache off]")
                             : "");
    };

    // -- Update throughput, one session per workload. -----------------------
    {
      auto session_or = OpenOver(cell.backend, {});
      if (!session_or.ok()) return 1;
      api::Session session = std::move(session_or).value();
      if (!session.Register(base).ok()) return 1;
      auto apply = [&](const UpdateOp& op) {
        Status st = session.Apply(op);
        if (!st.ok()) {
          std::fprintf(stderr, "%s failed on %s: %s\n", op.ToString().c_str(),
                       cell.backend, st.ToString().c_str());
        }
        return st.ok();
      };

      Timer t;
      if (!apply(UpdateOp::InsertTuples("R", batch))) return 1;
      report("insert", batch.NumRows(), t.Seconds());

      t.Reset();
      if (!apply(UpdateOp::DeleteWhere(
              "R", Predicate::Cmp("AGE", CmpOp::kGe, rel::Value::Int(85))))) {
        return 1;
      }
      report("delete", 1, t.Seconds());

      t.Reset();
      if (!apply(UpdateOp::ModifyWhere(
              "R", Predicate::Cmp("SEX", CmpOp::kEq, rel::Value::Int(1)),
              {{"MARITAL", rel::Value::Int(0)}}))) {
        return 1;
      }
      report("modify", 1, t.Seconds());

      // World-conditional modify: on fully certain data the guard decides
      // uniformly, but the condition plan still runs through the engine
      // (and the uniform backend pays its fallback round trip).
      t.Reset();
      if (!apply(UpdateOp::ModifyWhere("R",
                                       Predicate::Cmp("RACE", CmpOp::kEq,
                                                      rel::Value::Int(3)),
                                       {{"HISPANIC", rel::Value::Int(1)}})
                     .When(Plan::Select(Predicate::Cmp("AGE", CmpOp::kGe,
                                                       rel::Value::Int(90)),
                                        Plan::Scan("R"))))) {
        return 1;
      }
      report("cond-modify", 1, t.Seconds());
    }

    // -- Mixed read/write, answer cache on vs off. --------------------------
    for (bool cache : {true, false}) {
      auto session_or =
          OpenOver(cell.backend, {.threads = 1, .cache = cache});
      if (!session_or.ok()) return 1;
      api::Session session = std::move(session_or).value();
      if (!session.Register(base).ok()) return 1;

      const size_t rounds = 5;
      const size_t reads_per_round = 4;
      rel::Relation one(base.schema(), "one");
      one.AppendRow(batch.row(0).span());

      Timer t;
      for (size_t round = 0; round < rounds; ++round) {
        if (!session.Apply(UpdateOp::InsertTuples("R", one)).ok()) return 1;
        for (size_t i = 0; i < reads_per_round; ++i) {
          if (!session.PossibleTuples("R").ok()) return 1;
          if (!session.CertainTuples("R").ok()) return 1;
        }
      }
      report("mixed", rounds * (1 + 2 * reads_per_round), t.Seconds(),
             cache ? 1 : 0, session.Stats().answer_cache_hits);
    }
  }

  if (json_path != nullptr) {
    WriteJson(json_path, samples);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
