// Ablation: WSD size vs. explicit world-set size (the 10^(10^6) argument).
//
// The paper's motivation (Section 1): a census survey with or-set noise
// represents 2^(#or-set-fields) and more worlds; the world-set relation
// grows exponentially while the WSD stays linear in the or-set relation.
// This harness quantifies that: for k = 1..kMaxFields noisy fields we
// report the world count, the world-set-relation cell count (enumerated up
// to a cap) and the WSD cell count, plus the time to materialize each.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/orset.h"
#include "core/worldset.h"

int main() {
  using namespace maywsd;
  constexpr int kMaxFields = 18;
  constexpr uint64_t kEnumCap = 1u << 20;

  census::CensusSchema schema = census::CensusSchema::Standard();
  std::printf(
      "# Ablation: explicit world-set relation vs. WSD representation\n");
  std::printf("%8s %14s %18s %14s %12s %12s\n", "orsets", "worlds",
              "wsr_cells", "wsd_cells", "enum_sec", "wsd_sec");
  for (int k = 1; k <= kMaxFields; ++k) {
    // One 20-tuple relation; k fields carry or-sets of size 2.
    rel::Relation base = census::GenerateCensus(schema, 20, 7);
    core::OrSetRelation orset(base.schema(), "R");
    int noisy = 0;
    for (size_t r = 0; r < base.NumRows(); ++r) {
      std::vector<core::OrSetField> row;
      for (size_t a = 0; a < base.arity(); ++a) {
        if (noisy < k && a == r % base.arity()) {
          int64_t v = base.row(r)[a].AsInt();
          row.emplace_back(std::vector<rel::Value>{
              rel::Value::Int(v),
              rel::Value::Int((v + 1) %
                              schema.attributes()[a].domain_size)});
          ++noisy;
        } else {
          row.emplace_back(base.row(r)[a]);
        }
      }
      if (!orset.AppendRow(std::move(row)).ok()) return 1;
    }
    uint64_t worlds = orset.WorldCount(kEnumCap);

    Timer t_wsd;
    auto wsd = orset.ToWsd();
    if (!wsd.ok()) return 1;
    double wsd_sec = t_wsd.Seconds();
    size_t wsd_cells = 0;
    for (size_t i : wsd->LiveComponents()) {
      wsd_cells +=
          wsd->component(i).NumFields() * wsd->component(i).NumWorlds();
    }

    double enum_sec = -1.0;
    uint64_t wsr_cells = 0;
    if (worlds < kEnumCap) {
      Timer t_enum;
      auto enumerated = wsd->EnumerateWorlds(kEnumCap);
      if (enumerated.ok()) {
        enum_sec = t_enum.Seconds();
        auto ischema = core::DeriveInlinedSchema(*enumerated).value();
        wsr_cells = enumerated->size() * ischema.ToFlatSchema().arity();
      }
    }
    if (enum_sec >= 0) {
      std::printf("%8d %14llu %18llu %14zu %12.4f %12.6f\n", k,
                  static_cast<unsigned long long>(worlds),
                  static_cast<unsigned long long>(wsr_cells), wsd_cells,
                  enum_sec, wsd_sec);
    } else {
      std::printf("%8d %14s %18s %14zu %12s %12.6f\n", k, ">cap", ">cap",
                  wsd_cells, "-", wsd_sec);
    }
  }
  return 0;
}
