// A hidden-role game (Mafia night) played over belief world sets.
//
// Four players — alice, bob, carol, dan — are dealt one mafia, one
// detective and two townsfolk. Each player sees only their own card, so a
// player's belief state is the set of deals consistent with it: a world
// set over Roles(PLAYER, ROLE), one world per possible assignment. The
// belief::Game runs the epistemics on top of an api::Session per agent:
//
//   - a public claim is a Game::Step of ObservationOps(fact) — every
//     agent's world set is conditioned at once,
//   - a private investigation is Game::Observe on one agent,
//   - "what would I believe if …" is Game::Speculate — an O(1) COW fork
//     with the batch applied, memoized per structurally equal batch, so
//     re-considering the same move during deliberation re-pins the cached
//     successor (zero new forks, zero re-applied updates).
//
// The story runs on the wsdt backend with full narration, then replays on
// the other three backends and checks they reach identical conclusions.

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <string>
#include <vector>

#include "api/session.h"
#include "belief/belief.h"
#include "core/worldset.h"

using namespace maywsd;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::Value;

namespace {

const char* kPlayers[] = {"alice", "bob", "carol", "dan"};
// The actual deal: bob drew mafia, carol the detective.
const char* kDeal[] = {"towns", "mafia", "detective", "towns"};

rel::Relation DealRelation(const std::vector<std::string>& roles) {
  rel::Relation r(rel::Schema::FromNames({"PLAYER", "ROLE"}), "Roles");
  for (size_t i = 0; i < 4; ++i) {
    r.AppendRow({Value::String(kPlayers[i]), Value::String(roles[i])});
  }
  r.SortDedup();
  return r;
}

/// The deals consistent with `self` holding their true card: every
/// permutation of the remaining roles over the other players, uniformly.
Result<api::Session> DealSession(api::BackendKind kind, size_t self) {
  std::vector<size_t> others;
  std::vector<std::string> remaining;
  for (size_t i = 0; i < 4; ++i) {
    if (i == self) continue;
    others.push_back(i);
    remaining.push_back(kDeal[i]);
  }
  std::sort(remaining.begin(), remaining.end());
  std::vector<core::PossibleWorld> worlds;
  do {
    core::PossibleWorld w;
    std::vector<std::string> roles(4);
    roles[self] = kDeal[self];
    for (size_t i = 0; i < 3; ++i) roles[others[i]] = remaining[i];
    w.db.PutRelation(DealRelation(roles));
    w.prob = 1.0;
    worlds.push_back(std::move(w));
  } while (std::next_permutation(remaining.begin(), remaining.end()));
  for (core::PossibleWorld& w : worlds) w.prob /= worlds.size();
  MAYWSD_ASSIGN_OR_RETURN(core::Wsd wsd, core::WsdFromWorlds(worlds));
  if (kind == api::BackendKind::kWsd) {
    return api::Session::Open(std::move(wsd));
  }
  MAYWSD_ASSIGN_OR_RETURN(core::Wsdt wsdt, core::Wsdt::FromWsd(wsd));
  return api::Session::Open(kind, wsdt);
}

Plan HasRole(const char* player, const char* role) {
  return Plan::Select(
      Predicate::And(Predicate::Cmp("PLAYER", CmpOp::kEq,
                                    Value::String(player)),
                     Predicate::Cmp("ROLE", CmpOp::kEq, Value::String(role))),
      Plan::Scan("Roles"));
}

std::vector<Value> RoleTuple(const char* player, const char* role) {
  return {Value::String(player), Value::String(role)};
}

template <typename T>
T ValueOr(Result<T> result, T fallback) {
  return result.ok() ? std::move(result).value() : fallback;
}

/// What one backend concluded, for the cross-backend agreement check.
struct Conclusions {
  bool alice_knows_carol = false;
  double alice_conf_bob_mafia = 0;
  bool carol_knows_bob = false;
  bool commonly_known_before = true;
  bool speculation_knows = false;
  uint64_t forks_second_speculation = 1;
  bool commonly_known_after = false;
};

int PlayGame(api::BackendKind kind, bool narrate, Conclusions& out) {
  belief::Game game;
  for (size_t i = 0; i < 4; ++i) {
    auto session = DealSession(kind, i);
    if (!session.ok()) return 1;
    if (!game.AddAgent(kPlayers[i], std::move(session).value()).ok()) {
      return 1;
    }
  }
  if (narrate) {
    std::printf("the deal (hidden): bob=mafia carol=detective, "
                "alice/dan=townsfolk\n");
    std::printf("each player's belief state: %zu agents over the deals "
                "consistent with their own card\n\n",
                game.AgentNames().size());
  }

  // Day 1: carol publicly claims the detective card. A public claim is a
  // Step of the conditioning batch — every agent's worlds are filtered.
  std::vector<rel::UpdateOp> claim =
      belief::ObservationOps(HasRole("carol", "detective"));
  if (!game.Step(claim).ok()) return 1;
  belief::Agent* alice = game.agent("alice");
  out.alice_knows_carol =
      ValueOr(alice->Knows("Roles", RoleTuple("carol", "detective")), false);
  out.alice_conf_bob_mafia =
      ValueOr(alice->Confidence("Roles", RoleTuple("bob", "mafia")), -1.0);
  if (narrate) {
    std::printf("carol claims detective (public Step):\n");
    std::printf("  alice knows carol=detective: %s\n",
                out.alice_knows_carol ? "yes" : "no");
    std::printf("  alice's P(bob=mafia): %.3f  (bob and dan split the "
                "suspicion)\n\n",
                out.alice_conf_bob_mafia);
  }

  // Night 1: carol investigates bob — a private observation; only carol's
  // world set is conditioned.
  if (!game.Observe("carol", HasRole("bob", "mafia")).ok()) return 1;
  belief::Agent* carol = game.agent("carol");
  out.carol_knows_bob =
      ValueOr(carol->Knows("Roles", RoleTuple("bob", "mafia")), false);
  out.commonly_known_before =
      ValueOr(game.CommonlyKnown("Roles", RoleTuple("bob", "mafia")), true);
  if (narrate) {
    std::printf("carol investigates bob (private Observe):\n");
    std::printf("  carol knows bob=mafia: %s\n",
                out.carol_knows_bob ? "yes" : "no");
    std::printf("  commonly known that bob=mafia: %s\n\n",
                out.commonly_known_before ? "yes" : "no");
  }

  // Deliberation: alice weighs "what if the investigation outs bob?" —
  // a speculative successor. Re-considering the same scenario must re-pin
  // the memoized fork: no new fork, no re-applied conditioning.
  std::vector<rel::UpdateOp> scenario =
      belief::ObservationOps(HasRole("bob", "mafia"));
  auto successor = game.Speculate("alice", scenario);
  if (!successor.ok()) return 1;
  out.speculation_knows =
      ValueOr(successor.value()
          ->Knows("Roles", RoleTuple("bob", "mafia")), false);
  belief::BeliefStats before = game.Stats();
  auto again =
      game.Speculate("alice", belief::ObservationOps(HasRole("bob", "mafia")));
  if (!again.ok()) return 1;
  belief::BeliefStats after = game.Stats();
  out.forks_second_speculation = after.forks - before.forks;
  if (narrate) {
    std::printf("alice speculates \"what if bob is outed?\" (Speculate):\n");
    std::printf("  in that successor she knows bob=mafia: %s\n",
                out.speculation_knows ? "yes" : "no");
    std::printf("  re-considering the same scenario: %llu new forks, "
                "cache hits %llu (the successor was re-pinned)\n\n",
                static_cast<unsigned long long>(out.forks_second_speculation),
                static_cast<unsigned long long>(after.successor_hits));
  }

  // Day 2: bob is voted out and his card is revealed — public once more.
  if (!game.Step(belief::ObservationOps(HasRole("bob", "mafia"))).ok()) {
    return 1;
  }
  out.commonly_known_after =
      ValueOr(game.CommonlyKnown("Roles", RoleTuple("bob", "mafia")), false);
  if (narrate) {
    std::printf("bob is voted out, card revealed (public Step):\n");
    std::printf("  commonly known that bob=mafia: %s\n",
                out.commonly_known_after ? "yes" : "no");
    belief::Agent* dan = game.agent("dan");
    double conf =
        ValueOr(dan->Confidence("Roles", RoleTuple("alice", "towns")), -1.0);
    std::printf("  dan's P(alice=townsfolk) after both reveals: %.3f\n\n",
                conf);
  }
  return 0;
}

bool Sane(const Conclusions& c) {
  return c.alice_knows_carol && c.alice_conf_bob_mafia > 0.49 &&
         c.alice_conf_bob_mafia < 0.51 && c.carol_knows_bob &&
         !c.commonly_known_before && c.speculation_knows &&
         c.forks_second_speculation == 0 && c.commonly_known_after;
}

bool Agrees(const Conclusions& a, const Conclusions& b) {
  return a.alice_knows_carol == b.alice_knows_carol &&
         std::abs(a.alice_conf_bob_mafia - b.alice_conf_bob_mafia) < 1e-9 &&
         a.carol_knows_bob == b.carol_knows_bob &&
         a.commonly_known_before == b.commonly_known_before &&
         a.speculation_knows == b.speculation_knows &&
         a.forks_second_speculation == b.forks_second_speculation &&
         a.commonly_known_after == b.commonly_known_after;
}

}  // namespace

int main() {
  Conclusions reference;
  if (PlayGame(api::BackendKind::kWsdt, /*narrate=*/true, reference) != 0 ||
      !Sane(reference)) {
    std::printf("wsdt game went wrong\n");
    return 1;
  }
  for (api::BackendKind kind :
       {api::BackendKind::kWsd, api::BackendKind::kUniform,
        api::BackendKind::kUrel}) {
    Conclusions c;
    if (PlayGame(kind, /*narrate=*/false, c) != 0 || !Agrees(reference, c)) {
      std::printf("backend %s disagrees with wsdt\n",
                  std::string(api::BackendKindName(kind)).c_str());
      return 1;
    }
    std::printf("replayed on %s: identical conclusions\n",
                std::string(api::BackendKindName(kind)).c_str());
  }
  return 0;
}
