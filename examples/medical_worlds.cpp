// Medical data with interdependent clusters (Section 10).
//
// Medications interact: some are not approved together or for certain
// diseases. For an incompletely specified patient record, the valid
// (diagnosis, medication) combinations form clusters of interdependent
// values — exactly the data pattern WSDs store as multi-field components,
// keeping independent clusters apart.
//
// We model one patient whose diagnosis is uncertain and whose treatment
// must be compatible with the diagnosis, plus an independent lab result.
// Queries run through the api::Session facade: possible diagnoses,
// commonly prescribed medication for a set of diseases, and the effect of
// new evidence (an EGD) on the distribution. The chase is
// representation-level tooling and conditions the session's WSD in place.

#include <cstdio>

#include "api/session.h"
#include "core/chase.h"

using namespace maywsd;
using core::Component;
using core::FieldKey;
using rel::Value;

int main() {
  // Patient record: DIAGNOSIS and MEDICATION are correlated (link-following
  // wrap: one component for all interrelated values, Section 10); the lab
  // marker is independent.
  core::Wsd wsd;
  (void)wsd.AddRelation(
      "Patient", rel::Schema::FromNames({"DIAG", "MED", "MARKER"}), 1);
  {
    // Interaction table: flu→oseltamivir, strep→penicillin or amoxicillin,
    // mono must NOT get amoxicillin (rash) → supportive care only.
    Component c({FieldKey("Patient", 0, "DIAG"),
                 FieldKey("Patient", 0, "MED")});
    c.AddWorld({Value::String("flu"), Value::String("oseltamivir")}, 0.30);
    c.AddWorld({Value::String("strep"), Value::String("penicillin")}, 0.25);
    c.AddWorld({Value::String("strep"), Value::String("amoxicillin")}, 0.15);
    c.AddWorld({Value::String("mono"), Value::String("supportive")}, 0.30);
    (void)wsd.AddComponent(std::move(c));
  }
  {
    Component c({FieldKey("Patient", 0, "MARKER")});
    c.AddWorld({Value::String("elevated")}, 0.6);
    c.AddWorld({Value::String("normal")}, 0.4);
    (void)wsd.AddComponent(std::move(c));
  }
  std::printf("patient record as a WSD:\n%s\n", wsd.ToString().c_str());

  api::Session session = api::Session::Open(std::move(wsd));

  // Possible diagnoses with confidence.
  if (Status st = session.Run(
          rel::Plan::Project({"DIAG"}, rel::Plan::Scan("Patient")),
          "Diagnoses");
      !st.ok()) {
    return 1;
  }
  auto diag = session.PossibleTuplesWithConfidence("Diagnoses").value();
  std::printf("possible diagnoses:\n%s\n", diag.ToString().c_str());

  // Commonly used medication for bacterial diagnoses (strep).
  rel::Plan q = rel::Plan::Project(
      {"MED"},
      rel::Plan::Select(
          rel::Predicate::Cmp("DIAG", rel::CmpOp::kEq,
                              Value::String("strep")),
          rel::Plan::Scan("Patient")));
  if (Status st = session.Run(q, "StrepMeds"); !st.ok()) return 1;
  auto meds = session.PossibleTuplesWithConfidence("StrepMeds").value();
  std::printf("medication given strep:\n%s\n", meds.ToString().c_str());

  // New evidence: the rapid test says an elevated marker rules out flu.
  core::Egd evidence;
  evidence.relation = "Patient";
  evidence.premises = {{"MARKER", rel::CmpOp::kEq,
                        Value::String("elevated")}};
  evidence.conclusion = {"DIAG", rel::CmpOp::kNe, Value::String("flu")};
  if (Status st = core::ChaseEgd(*session.wsd(), evidence); !st.ok()) {
    std::printf("chase failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("after conditioning on the marker evidence:\n");
  // Recompute diagnosis confidences on the cleaned record.
  if (Status st = session.Run(
          rel::Plan::Project({"DIAG"}, rel::Plan::Scan("Patient")),
          "Diagnoses2");
      !st.ok()) {
    return 1;
  }
  auto diag2 = session.PossibleTuplesWithConfidence("Diagnoses2").value();
  std::printf("%s\n", diag2.ToString().c_str());
  return 0;
}
