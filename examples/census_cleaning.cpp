// Census cleaning end to end (the Section 9 workflow at example scale):
// generate an IPUMS-like extract, inject or-set noise, clean it with the
// twelve Figure 25 dependencies, evaluate the six Figure 29 queries
// through the api::Session facade, and report UWSDT characteristics and
// timings. Also demonstrates the uniform C/F/W relational encoding and
// CSV export of a query answer's template.
//
// Usage: census_cleaning [rows] — default 20000.

#include <cstdio>
#include <cstdlib>

#include "api/session.h"
#include "census/dependencies.h"
#include "census/ipums.h"
#include "census/noise.h"
#include "census/queries.h"
#include "common/timer.h"
#include "core/storage.h"
#include "core/uniform.h"
#include "core/wsdt_chase.h"
#include "core/wsdt_normalize.h"
#include "rel/csv.h"

using namespace maywsd;

int main(int argc, char** argv) {
  size_t rows = 20000;
  if (argc > 1) {
    rows = static_cast<size_t>(std::strtoull(argv[1], nullptr, 10));
    if (rows == 0) rows = 20000;
  }
  constexpr double kDensity = 0.001;  // 0.1%: one field in 1000 is noisy

  census::CensusSchema schema = census::CensusSchema::Standard();
  std::printf("generating %zu census records (%zu attributes)...\n", rows,
              schema.arity());
  rel::Relation base = census::GenerateCensus(schema, rows, /*seed=*/2007);

  census::NoiseReport report;
  auto wsdt_or = census::MakeNoisyWsdt(base, schema, kDensity, 42, &report);
  if (!wsdt_or.ok()) return 1;
  core::Wsdt wsdt = std::move(wsdt_or).value();
  std::printf(
      "injected noise: %zu of %zu fields became or-sets "
      "(avg %.2f options) => far more than 2^%zu worlds\n",
      report.placeholders, report.fields_total, report.avg_orset_size,
      report.placeholders);

  Timer chase_timer;
  if (Status st = core::WsdtChase(wsdt, census::CensusDependencies("R"));
      !st.ok()) {
    std::printf("chase failed: %s\n", st.ToString().c_str());
    return 1;
  }
  core::WsdtStats stats = wsdt.ComputeStats();
  std::printf(
      "chased 12 dependencies in %.3f s: #comp=%zu #comp>1=%zu |C|=%zu "
      "|R|=%zu\n\n",
      chase_timer.Seconds(), stats.num_components,
      stats.num_components_multi, stats.c_size, stats.template_rows);

  // The cleaned decomposition becomes a query session; the six Figure 29
  // queries run through the one facade.
  api::Session session = api::Session::Open(std::move(wsdt));
  for (int q = 1; q <= 6; ++q) {
    std::string out = "Q" + std::to_string(q);
    Timer t;
    if (Status st = session.Run(census::CensusQuery(q, "R"), out); !st.ok()) {
      std::printf("%s failed: %s\n", out.c_str(), st.ToString().c_str());
      return 1;
    }
    auto qs = session.wsdt()->StatsForRelation(out).value();
    std::printf("%s: %.4f s   |R|=%zu rows, #comp=%zu, |C|=%zu\n",
                out.c_str(), t.Seconds(), qs.template_rows,
                qs.num_components, qs.c_size);
  }

  // Normalize the queried representation (Section 7): the chase and the
  // queries can leave constant or duplicate local worlds behind.
  // Normalization is representation-level tooling below the facade.
  core::WsdtStats pre = session.wsdt()->ComputeStats();
  if (Status st = core::WsdtNormalize(*session.wsdt()); !st.ok()) return 1;
  core::WsdtStats post = session.wsdt()->ComputeStats();
  std::printf("\nnormalization: |C| %zu -> %zu, #comp %zu -> %zu\n",
              pre.c_size, post.c_size, pre.num_components,
              post.num_components);

  // Close the possible-worlds semantics on one answer: Q3's possible
  // tuples ranked by confidence (Section 6), asked through the session.
  auto q3_answers = session.PossibleTuplesWithConfidence("Q3");
  if (q3_answers.ok()) {
    std::printf("\nfirst possible Q3 answers with confidence:\n%s\n",
                q3_answers->ToString(8).c_str());
  }

  // The uniform (fixed-arity) encoding a conventional RDBMS would store —
  // the same data Session::Open(BackendKind::kUniform, ...) would query
  // in place.
  auto uniform = core::ExportUniform(*session.wsdt());
  if (!uniform.ok()) return 1;
  std::printf(
      "uniform encoding: C has %zu rows, F has %zu rows, W has %zu rows\n",
      uniform->GetRelation(core::kUniformC).value()->NumRows(),
      uniform->GetRelation(core::kUniformF).value()->NumRows(),
      uniform->GetRelation(core::kUniformW).value()->NumRows());

  // Persist the whole cleaned-and-queried WSDT and one answer's template.
  if (core::SaveWsdt(*session.wsdt(), "/tmp/maywsd_census").ok()) {
    std::printf("saved the UWSDT to /tmp/maywsd_census/ (CSV bundle)\n");
  }
  const rel::Relation* q6 = session.wsdt()->Template("Q6").value();
  if (rel::WriteCsvFile(*q6, "/tmp/maywsd_q6.csv").ok()) {
    std::printf("wrote %zu Q6 rows to /tmp/maywsd_q6.csv\n", q6->NumRows());
  }
  return 0;
}
