// Quickstart: the paper's running example, start to finish.
//
// 1. Two ambiguous census forms become an or-set relation (32 worlds).
// 2. Data cleaning — "social security numbers are unique" — excludes 8
//    worlds; the result is no longer representable as an or-set relation
//    but decomposes into the WSD of Figure 3.
// 3. The probabilistic WSD of Figure 4 attaches weights; chasing the
//    reliable fact "the person with SSN 785 is married" yields Figure 22.
// 4. Query π_S(R) and confidence computation reproduce Example 11,
//    through the api::Session facade.

#include <cstdio>

#include "api/session.h"
#include "core/chase.h"
#include "core/normalize.h"
#include "core/orset.h"
#include "core/wsdt.h"

using namespace maywsd;
using core::Component;
using core::FieldKey;
using core::Wsd;
using rel::Value;

int main() {
  // -- Step 1: the two survey forms as an or-set relation. ----------------
  core::OrSetRelation forms(rel::Schema::FromNames({"S", "N", "M"}), "R");
  if (!forms
           .AppendRow({{Value::Int(185), Value::Int(785)},
                       {Value::String("Smith")},
                       {Value::Int(1), Value::Int(2)}})
           .ok() ||
      !forms
           .AppendRow({{Value::Int(185), Value::Int(186)},
                       {Value::String("Brown")},
                       {Value::Int(1), Value::Int(2), Value::Int(3),
                        Value::Int(4)}})
           .ok()) {
    return 1;
  }
  std::printf("or-set relation represents %llu worlds\n",
              static_cast<unsigned long long>(forms.WorldCount(1000)));

  Wsd wsd = forms.ToWsd().value();
  std::printf("\nWSD of the or-set relation (Example 1):\n%s\n",
              wsd.ToString().c_str());

  // -- Step 2: clean with the key constraint (FD S → N). ------------------
  core::Fd unique_ssn{"R", {"S"}, "N"};
  if (Status st = core::ChaseFd(wsd, unique_ssn); !st.ok()) {
    std::printf("chase failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("after cleaning: %zu worlds remain (Figure 2/3)\n",
              core::CollapseWorlds(wsd.EnumerateWorlds(100).value()).size());
  // The chase may leave a non-maximal decomposition (Section 8); the
  // normalization of Section 7 re-factorizes it into Figure 3's shape.
  if (Status st = core::NormalizeWsd(wsd); !st.ok()) return 1;
  std::printf("\ncleaned and normalized WSD (Figure 3):\n%s\n",
              wsd.ToString().c_str());

  // -- Step 3: the probabilistic version (Figure 4) and one more fact. ----
  Wsd prob;
  (void)prob.AddRelation("R", rel::Schema::FromNames({"S", "N", "M"}), 2);
  {
    Component c({FieldKey("R", 0, "S"), FieldKey("R", 1, "S")});
    c.AddWorld({Value::Int(185), Value::Int(186)}, 0.2);
    c.AddWorld({Value::Int(785), Value::Int(185)}, 0.4);
    c.AddWorld({Value::Int(785), Value::Int(186)}, 0.4);
    (void)prob.AddComponent(std::move(c));
  }
  {
    Component c({FieldKey("R", 0, "N")});
    c.AddWorld({Value::String("Smith")}, 1.0);
    (void)prob.AddComponent(std::move(c));
  }
  {
    Component c({FieldKey("R", 0, "M")});
    c.AddWorld({Value::Int(1)}, 0.7);
    c.AddWorld({Value::Int(2)}, 0.3);
    (void)prob.AddComponent(std::move(c));
  }
  {
    Component c({FieldKey("R", 1, "N")});
    c.AddWorld({Value::String("Brown")}, 1.0);
    (void)prob.AddComponent(std::move(c));
  }
  {
    Component c({FieldKey("R", 1, "M")});
    for (int i = 1; i <= 4; ++i) c.AddWorld({Value::Int(i)}, 0.25);
    (void)prob.AddComponent(std::move(c));
  }
  std::printf("probabilistic WSD (Figure 4):\n%s\n", prob.ToString().c_str());

  // As a WSDT (Figure 5): certain fields move into the template.
  auto wsdt = core::Wsdt::FromWsd(prob).value();
  std::printf("as a WSDT (Figure 5):\n%s\n", wsdt.ToString().c_str());

  core::Egd married;
  married.relation = "R";
  married.premises = {{"S", rel::CmpOp::kEq, Value::Int(785)}};
  married.conclusion = {"M", rel::CmpOp::kEq, Value::Int(1)};
  if (Status st = core::ChaseEgd(prob, married); !st.ok()) {
    std::printf("chase failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("after chasing S=785 => M=1 (Figure 22):\n%s\n",
              prob.ToString().c_str());

  // -- Step 4: query and confidence (Example 11), via the Session API. ----
  api::Session session = api::Session::Open(std::move(prob));
  if (Status st = session.Run(rel::Plan::Project({"S"}, rel::Plan::Scan("R")),
                              "Q");
      !st.ok()) {
    std::printf("projection failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto answers = session.PossibleTuplesWithConfidence("Q").value();
  std::printf("possible answers to Q = pi_S(R) with confidence:\n%s\n",
              answers.ToString().c_str());
  return 0;
}
