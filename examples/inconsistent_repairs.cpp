// Inconsistent databases and minimal repairs (Section 10).
//
// An employee table violates the key constraint EMP → SALARY: two sources
// report different salaries for the same employees. Each minimal repair
// keeps exactly one conflicting tuple per employee; the set of repairs is a
// world-set that overlaps heavily, so it decomposes into one small
// component per conflict while the consistent tuples live in the template.
//
// Consistent query answering returns only the certain tuples; the WSD
// keeps the full set of repairs, so we can also report the possible
// answers and their confidences — strictly more information.

#include <cstdio>

#include "api/session.h"
#include "core/normalize.h"
#include "core/worldset.h"

using namespace maywsd;
using core::PossibleWorld;
using rel::Value;

namespace {

/// One employee fact: name, department, salary.
struct Fact {
  const char* name;
  const char* dept;
  int64_t salary;
};

/// Builds one repair (choice `mask` picks which conflicting fact wins).
PossibleWorld MakeRepair(const std::vector<Fact>& consistent,
                         const std::vector<std::pair<Fact, Fact>>& conflicts,
                         unsigned mask, double prob) {
  PossibleWorld world;
  rel::Relation emp(rel::Schema::FromNames({"EMP", "DEPT", "SALARY"}),
                    "Employees");
  auto add = [&emp](const Fact& f) {
    emp.AppendRow({Value::String(f.name), Value::String(f.dept),
                   Value::Int(f.salary)});
  };
  for (const Fact& f : consistent) add(f);
  for (size_t i = 0; i < conflicts.size(); ++i) {
    add((mask >> i) & 1 ? conflicts[i].second : conflicts[i].first);
  }
  emp.SortDedup();
  world.db.PutRelation(std::move(emp));
  world.prob = prob;
  return world;
}

}  // namespace

int main() {
  std::vector<Fact> consistent = {
      {"Alice", "Eng", 95000},
      {"Bob", "Sales", 70000},
      {"Carol", "Eng", 120000},
  };
  // Two employees have conflicting salary reports.
  std::vector<std::pair<Fact, Fact>> conflicts = {
      {{"Dave", "Eng", 88000}, {"Dave", "Eng", 91000}},
      {{"Eve", "Sales", 64000}, {"Eve", "Sales", 75000}},
  };

  // The four minimal repairs, equally likely.
  std::vector<PossibleWorld> repairs;
  for (unsigned mask = 0; mask < 4; ++mask) {
    repairs.push_back(MakeRepair(consistent, conflicts, mask, 0.25));
  }
  std::printf("%zu minimal repairs of the inconsistent database\n",
              repairs.size());

  // Decompose: the template holds the consistent tuples once; each
  // conflict becomes one independent component.
  core::Wsd wsd = core::WsdFromWorlds(repairs).value();
  if (Status st = core::NormalizeWsd(wsd); !st.ok()) return 1;
  auto wsdt = core::Wsdt::FromWsd(wsd).value();
  core::WsdtStats stats = wsdt.ComputeStats();
  std::printf(
      "WSDT of the repairs: template=%zu rows, #comp=%zu (one per "
      "conflict)\n\n",
      stats.template_rows, stats.num_components);

  // Query: engineers earning at least 90000 — through the Session facade.
  api::Session session = api::Session::Open(std::move(wsd));
  rel::Plan q = rel::Plan::Project(
      {"EMP"},
      rel::Plan::Select(
          rel::Predicate::And(
              rel::Predicate::Cmp("DEPT", rel::CmpOp::kEq,
                                  Value::String("Eng")),
              rel::Predicate::Cmp("SALARY", rel::CmpOp::kGe,
                                  Value::Int(90000))),
          rel::Plan::Scan("Employees")));
  if (Status st = session.Run(q, "HighPaidEng"); !st.ok()) {
    std::printf("query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto answers = session.PossibleTuplesWithConfidence("HighPaidEng");
  if (!answers.ok()) return 1;
  std::printf("possible answers with confidence:\n%s\n",
              answers->ToString().c_str());
  auto certain = session.CertainTuples("HighPaidEng");
  if (!certain.ok()) return 1;
  std::printf("consistent (certain) answers — confidence 1:\n%s\n",
              certain->ToString().c_str());
  std::printf(
      "\nconsistent query answering would return only the certain rows;\n"
      "the WSD additionally ranks Dave by the fraction of repairs that\n"
      "support him.\n");
  return 0;
}
