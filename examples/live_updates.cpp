// Live updates: mutate a world set, then ask again — no rebuild.
//
// Before this subsystem every scenario rebuilt its Session from scratch;
// now a session serves interleaved queries and updates. The scenario:
//
// 1. A parts inventory where one delivery is uncertain — the shipment
//    relation holds a row that exists only in some worlds.
// 2. Certain maintenance: insert a new part, retire an old one, fix a
//    mislabeled category (plain insert / delete-where / modify-where).
// 3. A *world-conditional* update: "if any shipment arrived, mark part 20
//    as in stock" — applied exactly in the worlds where the shipment
//    exists, keeping the answers' uncertainty honest.
// 4. Re-query possible/certain tuples and confidences; the memoized answer
//    surface serves repeated asks from cache until the next update
//    invalidates it (Session::Stats()).
//
// Everything runs on all three backends to show they stay interchangeable
// under mutation.

#include <cstdio>

#include "api/session.h"
#include "core/component.h"
#include "core/wsd.h"
#include "core/wsdt.h"
#include "rel/update.h"

using namespace maywsd;
using core::Component;
using core::FieldKey;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::UpdateOp;
using rel::Value;

namespace {

/// Parts(ID, CAT, STOCK) is certain; Shipment(PART) holds one row that
/// exists in 40% of the worlds (a ⊥ local world encodes its absence).
core::Wsd Inventory() {
  core::Wsd wsd;
  (void)wsd.AddRelation("Parts", rel::Schema::FromNames({"ID", "CAT",
                                                         "STOCK"}),
                        2);
  (void)wsd.AddCertainField(FieldKey("Parts", 0, "ID"), Value::Int(10));
  (void)wsd.AddCertainField(FieldKey("Parts", 0, "CAT"), Value::Int(1));
  (void)wsd.AddCertainField(FieldKey("Parts", 0, "STOCK"), Value::Int(0));
  (void)wsd.AddCertainField(FieldKey("Parts", 1, "ID"), Value::Int(20));
  (void)wsd.AddCertainField(FieldKey("Parts", 1, "CAT"), Value::Int(9));
  (void)wsd.AddCertainField(FieldKey("Parts", 1, "STOCK"), Value::Int(0));
  (void)wsd.AddRelation("Shipment", rel::Schema::FromNames({"PART"}), 1);
  Component c({FieldKey("Shipment", 0, "PART")});
  c.AddWorld({Value::Int(20)}, 0.4);
  c.AddWorld({Value::Bottom()}, 0.6);  // no delivery in these worlds
  (void)wsd.AddComponent(std::move(c));
  return wsd;
}

Status RunScenario(api::Session& session, const char* backend) {
  std::printf("== %s backend\n", backend);

  // -- Certain maintenance. -------------------------------------------------
  rel::Relation new_part(rel::Schema::FromNames({"ID", "CAT", "STOCK"}),
                         "new");
  new_part.AppendRow({Value::Int(30), Value::Int(1), Value::Int(5)});
  MAYWSD_RETURN_IF_ERROR(
      session.Apply(UpdateOp::InsertTuples("Parts", new_part)));
  MAYWSD_RETURN_IF_ERROR(session.Apply(UpdateOp::DeleteWhere(
      "Parts", Predicate::Cmp("ID", CmpOp::kEq, Value::Int(10)))));
  MAYWSD_RETURN_IF_ERROR(session.Apply(UpdateOp::ModifyWhere(
      "Parts", Predicate::Cmp("CAT", CmpOp::kEq, Value::Int(9)),
      {{"CAT", Value::Int(2)}})));

  // -- The conditional restock: only in worlds with a delivery. -------------
  MAYWSD_RETURN_IF_ERROR(session.Apply(
      UpdateOp::ModifyWhere("Parts",
                            Predicate::Cmp("ID", CmpOp::kEq, Value::Int(20)),
                            {{"STOCK", Value::Int(7)}})
          .When(Plan::Scan("Shipment"))));

  // -- Re-query. ------------------------------------------------------------
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation possible,
                          session.PossibleTuples("Parts"));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation certain,
                          session.CertainTuples("Parts"));
  std::printf("possible(Parts):\n%s", possible.ToString().c_str());
  std::printf("certain(Parts):\n%s", certain.ToString().c_str());

  std::vector<Value> restocked{Value::Int(20), Value::Int(2), Value::Int(7)};
  std::vector<Value> unstocked{Value::Int(20), Value::Int(2), Value::Int(0)};
  MAYWSD_ASSIGN_OR_RETURN(double conf_restocked,
                          session.TupleConfidence("Parts", restocked));
  MAYWSD_ASSIGN_OR_RETURN(double conf_unstocked,
                          session.TupleConfidence("Parts", unstocked));
  std::printf("conf(part 20 restocked) = %.2f, conf(still empty) = %.2f\n",
              conf_restocked, conf_unstocked);

  // Asking again is free until the next update invalidates the memo.
  MAYWSD_RETURN_IF_ERROR(session.PossibleTuples("Parts").status());
  const api::SessionStats& stats = session.Stats();
  std::printf(
      "stats: %llu updates applied, answer cache %llu hits / %llu misses\n\n",
      static_cast<unsigned long long>(stats.applies),
      static_cast<unsigned long long>(stats.answer_cache_hits),
      static_cast<unsigned long long>(stats.answer_cache_misses));
  return Status::Ok();
}

}  // namespace

int main() {
  core::Wsd wsd = Inventory();

  api::Session over_wsd = api::Session::Open(core::Wsd(wsd));
  if (!RunScenario(over_wsd, "wsd").ok()) return 1;

  auto wsdt = core::Wsdt::FromWsd(wsd);
  if (!wsdt.ok()) return 1;
  api::Session over_wsdt = api::Session::Open(std::move(wsdt).value());
  if (!RunScenario(over_wsdt, "wsdt").ok()) return 1;

  auto uniform = api::Session::Open(api::BackendKind::kUniform,
                                    core::Wsdt::FromWsd(wsd).value());
  if (!uniform.ok()) return 1;
  if (!RunScenario(uniform.value(), "uniform").ok()) return 1;

  auto urel = api::Session::Open(api::BackendKind::kUrel,
                                 core::Wsdt::FromWsd(wsd).value());
  if (!urel.ok()) return 1;
  if (!RunScenario(urel.value(), "urel").ok()) return 1;

  std::printf("all four backends served the same mutating session.\n");
  return 0;
}
