// One query, one front door, four representations.
//
// api::Session is the representation-agnostic facade over the world-set
// engine: the same rel::Plan runs over (a) the Section 4 WSD, (b) the
// Section 5 WSDT template refinement, (c) the C/F/W uniform relational
// encoding of Section 3, and (d) the columnar U-relations store — and the
// same answer-side questions (possible tuples with confidence) are asked
// through the same interface. Every session comes from the one
// Session::Open entry point, and the world sets agree tuple for tuple
// across all four backends.

#include <cstdio>
#include <string>
#include <vector>

#include "api/session.h"
#include "core/orset.h"
#include "core/uniform.h"
#include "core/wsdt.h"

using namespace maywsd;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::Value;

int main() {
  // Two ambiguous census forms: SSN and marital status are or-sets.
  core::OrSetRelation forms(rel::Schema::FromNames({"S", "N", "M"}), "R");
  if (!forms
           .AppendRow({{Value::Int(185), Value::Int(785)},
                       {Value::String("Smith")},
                       {Value::Int(1), Value::Int(2)}})
           .ok() ||
      !forms
           .AppendRow({{Value::Int(186)},
                       {Value::String("Brown")},
                       {Value::Int(3), Value::Int(4)}})
           .ok()) {
    return 1;
  }
  core::Wsd wsd = forms.ToWsd().value();
  core::Wsdt wsdt = core::Wsdt::FromWsd(wsd).value();

  // Married or widowed people: σ_{M≤2}(π_{S,M}(R)).
  Plan plan = Plan::Select(Predicate::Cmp("M", CmpOp::kLe, Value::Int(2)),
                           Plan::Project({"S", "M"}, Plan::Scan("R")));

  // The same session calls against all four representations, all through
  // the one Session::Open front door (the uniform and U-relations stores
  // are converted from the template on open).
  auto uniform_or = api::Session::Open(api::BackendKind::kUniform, wsdt);
  if (!uniform_or.ok()) return 1;
  auto urel_or = api::Session::Open(api::BackendKind::kUrel, wsdt);
  if (!urel_or.ok()) return 1;
  api::Session sessions[] = {api::Session::Open(std::move(wsd)),
                             api::Session::Open(std::move(wsdt)),
                             std::move(uniform_or).value(),
                             std::move(urel_or).value()};

  rel::Relation reference;
  for (api::Session& session : sessions) {
    if (Status st = session.Run(plan, "OUT"); !st.ok()) {
      std::printf("%s evaluation failed: %s\n",
                  std::string(session.BackendName()).c_str(),
                  st.ToString().c_str());
      return 1;
    }
    auto answers = session.PossibleTuplesWithConfidence("OUT");
    if (!answers.ok()) {
      std::printf("%s answers failed: %s\n",
                  std::string(session.BackendName()).c_str(),
                  answers.status().ToString().c_str());
      return 1;
    }
    std::printf("%s backend — possible OUT tuples with confidence:\n%s\n",
                std::string(session.BackendName()).c_str(),
                answers->ToString().c_str());
    // Compare the tuples exactly and the confidences with a tolerance
    // (the backends associate the probability products differently).
    auto possible = session.PossibleTuples("OUT").value();
    if (reference.NumRows() == 0 && reference.arity() == 0) {
      reference = std::move(possible);
    } else if (!reference.EqualsAsSet(possible)) {
      std::printf("ERROR: %s disagrees with the first backend!\n",
                  std::string(session.BackendName()).c_str());
      return 1;
    }
  }
  for (size_t i = 0; i < reference.NumRows(); ++i) {
    double base =
        sessions[0].TupleConfidence("OUT", reference.row(i).span()).value();
    for (size_t s = 1; s < std::size(sessions); ++s) {
      double conf =
          sessions[s].TupleConfidence("OUT", reference.row(i).span()).value();
      if (conf > base + 1e-9 || conf < base - 1e-9) {
        std::printf("ERROR: confidence mismatch on tuple %zu\n", i);
        return 1;
      }
    }
  }
  std::printf("all four backends agree through one Session::Open API\n");
  std::printf("urel session import/export round trips for this query: %llu "
              "(positive RA is a pure descriptor rewriting)\n",
              static_cast<unsigned long long>(sessions[3].Stats().round_trips));

  // Parallel + batched execution through the same front door: a session
  // with a worker pool shards Run across independent tuple groups, and
  // RunAll evaluates a workload sharing common subplans once.
  {
    core::Wsdt fresh = core::Wsdt::FromWsd(forms.ToWsd().value()).value();
    api::Session parallel =
        api::Session::Open(std::move(fresh), {.threads = 4, .cache = true});
    Plan base = Plan::Project({"S", "M"}, Plan::Scan("R"));
    std::vector<Plan> workload = {
        Plan::Select(Predicate::Cmp("M", CmpOp::kLe, Value::Int(2)), base),
        Plan::Select(Predicate::Cmp("M", CmpOp::kGt, Value::Int(2)), base)};
    std::vector<std::string> outs = {"MARRIED", "OTHER"};
    if (Status st = parallel.RunAll(workload, outs); !st.ok()) {
      std::printf("RunAll failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (Status st = parallel.Run(plan, "OUT"); !st.ok()) {
      std::printf("parallel Run failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const api::SessionStats& stats = parallel.Stats();
    std::printf(
        "\nparallel session: %llu run(s), %llu sharded (%llu shards), "
        "RunAll cache %llu hit(s) / %llu miss(es)\n",
        static_cast<unsigned long long>(stats.runs),
        static_cast<unsigned long long>(stats.sharded_runs),
        static_cast<unsigned long long>(stats.shards_executed),
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.cache_misses));
  }

  // The uniform session really runs inside an RDBMS-style store: the
  // result template and the C/F/W system relations are plain relations.
  const rel::Database* store = sessions[2].uniform();
  std::printf("\nuniform store after the query: OUT template %zu rows, "
              "C %zu rows, F %zu rows, W %zu rows\n",
              store->GetRelation("OUT").value()->NumRows(),
              store->GetRelation(core::kUniformC).value()->NumRows(),
              store->GetRelation(core::kUniformF).value()->NumRows(),
              store->GetRelation(core::kUniformW).value()->NumRows());
  return 0;
}
