// One query, one driver, two representations.
//
// The world-set engine (core/engine/) lowers a rel::Plan exactly once; the
// WorldSetOps backends decide how each Figure 9 operator touches the data.
// This example builds the incomplete relation of the paper's running
// example, evaluates the same plan over (a) the WSD representation and
// (b) the WSDT template refinement through engine::Evaluate, and shows
// that both world sets agree tuple for tuple.

#include <cstdio>

#include "core/engine/plan_driver.h"
#include "core/engine/wsd_backend.h"
#include "core/engine/wsdt_backend.h"
#include "core/orset.h"
#include "core/wsdt.h"

using namespace maywsd;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::Value;

int main() {
  // Two ambiguous census forms: SSN and marital status are or-sets.
  core::OrSetRelation forms(rel::Schema::FromNames({"S", "N", "M"}), "R");
  if (!forms
           .AppendRow({{Value::Int(185), Value::Int(785)},
                       {Value::String("Smith")},
                       {Value::Int(1), Value::Int(2)}})
           .ok() ||
      !forms
           .AppendRow({{Value::Int(186)},
                       {Value::String("Brown")},
                       {Value::Int(3), Value::Int(4)}})
           .ok()) {
    return 1;
  }
  core::Wsd wsd = forms.ToWsd().value();

  // Married or widowed people: σ_{M≤2}(π_{S,M}(R)).
  Plan plan = Plan::Select(Predicate::Cmp("M", CmpOp::kLe, Value::Int(2)),
                           Plan::Project({"S", "M"}, Plan::Scan("R")));

  // (a) WSD backend: generic lowering (chains, unions, ⊥-marking).
  core::engine::WsdBackend wsd_backend(wsd);
  if (Status st = core::engine::Evaluate(wsd_backend, plan, "OUT"); !st.ok()) {
    std::printf("wsd evaluation failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // (b) WSDT backend: same driver, native one-pass predicate selection.
  core::Wsdt wsdt = core::Wsdt::FromWsd(forms.ToWsd().value()).value();
  core::engine::WsdtBackend wsdt_backend(wsdt);
  if (Status st = core::engine::Evaluate(wsdt_backend, plan, "OUT");
      !st.ok()) {
    std::printf("wsdt evaluation failed: %s\n", st.ToString().c_str());
    return 1;
  }

  auto wsd_worlds = wsd.EnumerateWorlds(1000, {"OUT"}).value();
  auto wsdt_worlds =
      wsdt.ToWsd().value().EnumerateWorlds(1000, {"OUT"}).value();
  std::printf("WSD backend:  %zu worlds of OUT\n", wsd_worlds.size());
  std::printf("WSDT backend: %zu worlds of OUT\n", wsdt_worlds.size());
  if (!core::WorldSetsEquivalent(wsd_worlds, wsdt_worlds)) {
    std::printf("ERROR: the two backends disagree!\n");
    return 1;
  }
  std::printf("world sets are identical across backends\n");
  for (size_t i = 0; i < wsd_worlds.size() && i < 3; ++i) {
    std::printf("\nworld %zu (p=%.3f) via WSD backend:\n%s", i,
                wsd_worlds[i].prob,
                wsd_worlds[i].db.GetRelation("OUT").value()->ToString()
                    .c_str());
  }
  return 0;
}
